// Replay driver: turns a libFuzzer target into a plain corpus-regression
// binary for toolchains without -fsanitize=fuzzer (the repo's default g++
// build). Each argv entry is a corpus directory (or single file); every
// regular file under it is fed to LLVMFuzzerTestOneInput in sorted order,
// so ctest exercises the whole checked-in corpus — including under the
// ASan+UBSan CI matrix entry — on every run.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    if (fs::is_regular_file(root)) {
      files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root)) {
      std::fprintf(stderr, "corpus path missing: %s\n", argv[i]);
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
  }
  std::printf("replayed %zu corpus files\n", files.size());
  // An empty corpus means the wiring (paths, checkout) broke — fail loudly
  // rather than greenly replaying nothing.
  return files.empty() ? 1 : 0;
}
