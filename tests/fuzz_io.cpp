// libFuzzer target for core::read_instance under hostile bytes.
//
// Built two ways (see CMakeLists.txt):
//  - SUU_FUZZ=ON (clang): linked against libFuzzer (-fsanitize=fuzzer) for
//    coverage-guided exploration; seed corpus in tests/corpus/io.
//  - otherwise: linked with tests/corpus_driver_main.cpp into fuzz_io_replay,
//    which replays the checked-in corpus on every ctest run (including the
//    ASan+UBSan CI matrix entry), so corpus regressions never need clang.
//
// The contract being fuzzed (hardened in the suu::serve PR): malformed or
// hostile input raises core::ParseError — never any other exception, never
// an assert/abort, never an allocation beyond ReadLimits — and any ACCEPTED
// instance round-trips through write_instance to an equal-fingerprint
// re-parse.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "core/instance.hpp"
#include "core/io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::istringstream is(text);
  // Tight limits keep the fuzzer fast and prove the pre-allocation caps
  // actually gate: a header like "16777215 16777215" must die here, cheaply.
  suu::core::ReadLimits limits;
  limits.max_jobs = 128;
  limits.max_machines = 128;
  limits.max_cells = 4096;
  limits.max_edges = 512;
  try {
    const suu::core::Instance inst = suu::core::read_instance(is, limits);
    std::ostringstream os;
    suu::core::write_instance(os, inst);
    std::istringstream is2(os.str());
    const suu::core::Instance again = suu::core::read_instance(is2, limits);
    if (again.fingerprint() != inst.fingerprint()) {
      __builtin_trap();  // round-trip broke: serialization bug
    }
  } catch (const suu::core::ParseError&) {
    // The typed rejection path — the only acceptable failure mode.
  }
  return 0;
}
