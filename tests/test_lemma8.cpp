// Empirical verification of the paper's Lemma 8: for independent geometric
// repetition counts y_j (Pr[y_j = k] = 2^-k) with weights
// 1 <= d_j <= W / log eta and W >= sum_j 2 d_j, the weighted sum
// sum_j y_j d_j is O(cW) with probability at least 1 - eta^-c.
//
// This is the concentration device behind the SUU-C load/length analysis
// (each chain job's assignment is repeated a geometric number of times).
// We simulate the exact setup and check (a) the mean matches E[y] = 2, and
// (b) the whp tail: P(sum > c' * W) decays below the lemma's envelope for a
// concrete constant.
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace suu {
namespace {

/// Geometric with support {1, 2, ...} and Pr[k] = (1/2)^k.
int geometric_half(util::Rng& rng) {
  int k = 1;
  while (rng.bernoulli(0.5)) ++k;
  return k;
}

TEST(Lemma8, GeometricSamplerHasMeanTwo) {
  util::Rng rng(1);
  util::OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(geometric_half(rng));
  EXPECT_NEAR(s.mean(), 2.0, 0.02);
}

class Lemma8Tail : public ::testing::TestWithParam<int> {};

TEST_P(Lemma8Tail, WeightedGeometricSumConcentrates) {
  util::Rng rng(100 + GetParam());
  const double eta = 64.0;  // "n + m" in the SUU-C application
  const int n_jobs = 20 + static_cast<int>(rng.uniform_below(60));

  // Weights obeying the lemma's preconditions.
  std::vector<double> d(static_cast<std::size_t>(n_jobs));
  double sum_d = 0;
  for (auto& w : d) {
    w = 1.0 + rng.uniform01() * 4.0;
    sum_d += w;
  }
  const double W = std::max(2.0 * sum_d, std::log2(eta) * 5.0);
  for (const double w : d) {
    ASSERT_LE(w, W / std::log2(eta) + 1e-9) << "precondition d <= W/log eta";
  }

  // Empirical tail of sum y_j d_j.
  const int trials = 4000;
  int exceed_3w = 0, exceed_6w = 0;
  util::OnlineStats sums;
  for (int t = 0; t < trials; ++t) {
    double s = 0;
    for (const double w : d) {
      s += w * static_cast<double>(geometric_half(rng));
    }
    sums.add(s);
    if (s > 3.0 * W) ++exceed_3w;
    if (s > 6.0 * W) ++exceed_6w;
  }

  // Mean: E[sum] = 2 sum_d <= W.
  EXPECT_LE(sums.mean(), W * 1.05);
  // Tail: the lemma promises P(sum > O(cW)) <= eta^-c; empirically the
  // 3W tail should be rare and the 6W tail essentially absent.
  EXPECT_LE(static_cast<double>(exceed_3w) / trials, 0.02);
  EXPECT_LE(static_cast<double>(exceed_6w) / trials, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma8Tail, ::testing::Range(0, 6));

TEST(Lemma8, HeavyWeightsViolatePreconditionAndSpread) {
  // Contrast: one dominant weight (d ~ W) breaks the d <= W/log eta
  // precondition, and the sum's relative spread is visibly larger —
  // demonstrating why SUU-C must segregate long jobs (the gamma cutoff).
  util::Rng rng(7);
  const int trials = 4000;

  auto relative_sd = [&](bool heavy) {
    util::OnlineStats s;
    for (int t = 0; t < trials; ++t) {
      double sum = 0;
      if (heavy) {
        sum += 32.0 * geometric_half(rng);  // one long job dominates
      } else {
        for (int j = 0; j < 32; ++j) sum += geometric_half(rng);
      }
      s.add(sum);
    }
    return s.stddev() / s.mean();
  };

  EXPECT_GT(relative_sd(true), 2.0 * relative_sd(false));
}

}  // namespace
}  // namespace suu
