#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace suu::util {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(OnlineStats, MatchesNaiveFormulas) {
  const double xs[] = {1.0, 2.0, 4.0, 8.0, 16.0};
  OnlineStats s;
  double sum = 0;
  for (const double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / 5.0;
  double m2 = 0;
  for (const double x : xs) m2 += (x - mean) * (x - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), m2 / 4.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(m2 / 4.0), 1e-12);
  EXPECT_NEAR(s.sem(), std::sqrt(m2 / 4.0 / 5.0), 1e-12);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(5);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 10;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(OnlineStats, Ci95Coverage) {
  // ~95% of CIs built from normal-ish samples should cover the true mean.
  Rng rng(77);
  int covered = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    OnlineStats s;
    for (int i = 0; i < 200; ++i) s.add(rng.uniform01());
    const Estimate e = make_estimate(s);
    if (e.lo() <= 0.5 && 0.5 <= e.hi()) ++covered;
  }
  EXPECT_GE(covered, trials * 85 / 100);
}

TEST(Estimate, Fields) {
  OnlineStats s;
  s.add(2.0);
  s.add(4.0);
  const Estimate e = make_estimate(s);
  EXPECT_EQ(e.n, 2u);
  EXPECT_DOUBLE_EQ(e.mean, 3.0);
  EXPECT_DOUBLE_EQ(e.min, 2.0);
  EXPECT_DOUBLE_EQ(e.max, 4.0);
  EXPECT_GT(e.ci95_half, 0.0);
}

TEST(Sampler, QuantileBasics) {
  Sampler s;
  for (int i = 10; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
  EXPECT_NEAR(s.quantile(0.5), 5.5, 1e-12);
}

TEST(Sampler, QuantileSingle) {
  Sampler s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.3), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 3.0);
}

TEST(Sampler, EmptyQuantileThrows) {
  Sampler s;
  EXPECT_THROW(s.quantile(0.5), CheckError);
  EXPECT_THROW(s.mean(), CheckError);
}

TEST(Sampler, OutOfRangeQuantileThrows) {
  Sampler s;
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), CheckError);
  EXPECT_THROW(s.quantile(1.1), CheckError);
}

TEST(Sampler, MergeAndMean) {
  Sampler a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Sampler, AddAfterQuantileStillSorted) {
  Sampler s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 9.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
}

}  // namespace
}  // namespace suu::util
