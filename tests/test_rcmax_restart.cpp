#include <gtest/gtest.h>

#include "stoch/rcmax.hpp"
#include "stoch/stc_i.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace suu::stoch {
namespace {

TEST(GreedyRcmax, SingleJobUsesFastestMachine) {
  const StochInstance inst(1, 3, {1.0}, {1.0, 4.0, 2.0});
  const NonpreemptiveSchedule s = greedy_rcmax(inst, {0}, {8.0});
  EXPECT_EQ(s.machine_of[0], 1);
  EXPECT_NEAR(s.makespan, 2.0, 1e-12);
  EXPECT_NEAR(s.lower_bound, 2.0, 1e-12);
}

TEST(GreedyRcmax, BalancesIdenticalMachines) {
  // 4 unit jobs, 2 unit-speed machines: greedy splits 2/2, makespan 2.
  const StochInstance inst(4, 2, {1, 1, 1, 1},
                           {1, 1, 1, 1, 1, 1, 1, 1});
  const NonpreemptiveSchedule s =
      greedy_rcmax(inst, {0, 1, 2, 3}, {1, 1, 1, 1});
  EXPECT_NEAR(s.makespan, 2.0, 1e-12);
}

TEST(GreedyRcmax, RespectsZeroSpeedMachines) {
  const StochInstance inst(2, 2, {1, 1}, {0.0, 1.0, 1.0, 0.0});
  const NonpreemptiveSchedule s = greedy_rcmax(inst, {0, 1}, {3.0, 5.0});
  EXPECT_EQ(s.machine_of[0], 1);  // job 0 only runs on machine 1
  EXPECT_EQ(s.machine_of[1], 0);
  EXPECT_NEAR(s.makespan, 5.0, 1e-12);
}

TEST(GreedyRcmax, NeverBelowLowerBound) {
  util::Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 3 + static_cast<int>(rng.uniform_below(8));
    const int m = 2 + static_cast<int>(rng.uniform_below(3));
    std::vector<double> lambda(static_cast<std::size_t>(n), 1.0);
    std::vector<double> v(static_cast<std::size_t>(n) * m);
    for (auto& s : v) s = 0.2 + rng.uniform01();
    const StochInstance inst(n, m, lambda, v);
    std::vector<int> jobs;
    std::vector<double> p;
    for (int j = 0; j < n; ++j) {
      jobs.push_back(j);
      p.push_back(0.5 + rng.uniform01() * 3);
    }
    const NonpreemptiveSchedule s = greedy_rcmax(inst, jobs, p);
    EXPECT_GE(s.makespan, s.lower_bound - 1e-9);
    // Greedy ECT on unrelated machines: sanity multiplicative gap bound.
    EXPECT_LE(s.makespan, 4.0 * s.lower_bound + 1e-9);
  }
}

TEST(GreedyRcmax, QueueConsistentWithMachineOf) {
  util::Rng rng(11);
  const StochInstance inst(5, 2, {1, 1, 1, 1, 1},
                           {1, 2, 2, 1, 1, 1, 2, 1, 1, 2});
  const NonpreemptiveSchedule s =
      greedy_rcmax(inst, {0, 1, 2, 3, 4}, {1, 2, 1, 2, 1});
  int placed = 0;
  for (int i = 0; i < 2; ++i) {
    for (const int idx : s.queue[static_cast<std::size_t>(i)]) {
      EXPECT_EQ(s.machine_of[static_cast<std::size_t>(idx)], i);
      ++placed;
    }
  }
  EXPECT_EQ(placed, 5);
}

TEST(StcR, CompletesAndBoundsOffline) {
  util::Rng master(21);
  std::vector<double> lambda = {1.0, 0.5, 2.0, 1.5};
  std::vector<double> v = {1, 0.5, 0.8, 1.2, 0.3, 1.0, 1.0, 0.7};
  const StochInstance inst(4, 2, lambda, v);
  util::OnlineStats ratio;
  for (int r = 0; r < 200; ++r) {
    util::Rng rng = master.child(static_cast<std::uint64_t>(r));
    const StcIResult res = run_stc_r(inst, rng);
    EXPECT_GT(res.makespan, 0.0);
    EXPECT_GE(res.makespan, res.offline_opt - 1e-9)
        << "no policy beats the offline optimum";
    ratio.add(res.makespan / res.offline_opt);
  }
  EXPECT_LT(ratio.mean(), 6.0);
}

TEST(StcR, RestartNeverBeatsPreemptiveOnAverage) {
  // Restart discards progress, so with identical draws E[T_STC-R] should
  // not be (statistically) better than E[T_STC-I] beyond noise.
  util::Rng rng(31);
  std::vector<double> lambda(8, 1.0);
  std::vector<double> v(16);
  for (auto& s : v) s = 0.3 + rng.uniform01();
  const StochInstance inst(8, 2, lambda, v);
  const StochEstimate est = estimate_stoch(inst, 400, 5);
  EXPECT_GE(est.stc_r.mean,
            est.stc_i.mean - 3 * (est.stc_r.ci95_half + est.stc_i.ci95_half));
}

TEST(StcR, DeterministicPerSeed) {
  std::vector<double> lambda = {1.0, 2.0};
  std::vector<double> v = {1.0, 0.5, 0.5, 1.0};
  const StochInstance inst(2, 2, lambda, v);
  util::Rng a(77), b(77);
  const StcIResult ra = run_stc_r(inst, a);
  const StcIResult rb = run_stc_r(inst, b);
  EXPECT_DOUBLE_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.rounds_used, rb.rounds_used);
}

TEST(StcR, RoundsBounded) {
  util::Rng master(41);
  std::vector<double> lambda(6, 1.0);
  std::vector<double> v(12, 1.0);
  const StochInstance inst(6, 2, lambda, v);
  for (int r = 0; r < 100; ++r) {
    util::Rng rng = master.child(static_cast<std::uint64_t>(r));
    const StcIResult res = run_stc_r(inst, rng);
    EXPECT_LE(res.rounds_used, stc_round_bound(6));
  }
}

}  // namespace
}  // namespace suu::stoch
