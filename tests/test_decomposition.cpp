#include "chains/decomposition.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace suu::chains {
namespace {

TEST(Decomposition, EmptyDagIsOneBlockOfSingletons) {
  core::Dag d(5);
  const Decomposition dec = decompose_forest(d);
  EXPECT_EQ(dec.num_blocks(), 1);
  EXPECT_EQ(dec.num_chains(), 5);
  EXPECT_EQ(dec.num_jobs(), 5);
  validate_decomposition(d, dec);
}

TEST(Decomposition, SingleChainIsOneBlock) {
  const core::Dag d = core::make_chain_dag({6});
  const Decomposition dec = decompose_forest(d);
  EXPECT_EQ(dec.num_blocks(), 1);
  EXPECT_EQ(dec.num_chains(), 1);
  EXPECT_EQ(dec.blocks[0][0], (std::vector<int>{0, 1, 2, 3, 4, 5}));
  validate_decomposition(d, dec);
}

TEST(Decomposition, OutStar) {
  // Root 0 with children 1..4: heavy path takes one child; the others are
  // singleton chains in block 1.
  core::Dag d(5);
  for (int v = 1; v < 5; ++v) d.add_edge(0, v);
  const Decomposition dec = decompose_forest(d);
  EXPECT_EQ(dec.num_blocks(), 2);
  validate_decomposition(d, dec);
  EXPECT_EQ(dec.num_jobs(), 5);
}

TEST(Decomposition, InStar) {
  // Leaves 1..4 all precede root 0 (in-tree).
  core::Dag d(5);
  for (int v = 1; v < 5; ++v) d.add_edge(v, 0);
  ASSERT_TRUE(d.is_in_forest());
  const Decomposition dec = decompose_forest(d);
  validate_decomposition(d, dec);
  EXPECT_EQ(dec.num_jobs(), 5);
}

TEST(Decomposition, CompleteBinaryTreeBlockBound) {
  // Perfect binary out-tree with 2^k - 1 nodes: block count <= k.
  const int levels = 5;
  const int n = (1 << levels) - 1;
  core::Dag d(n);
  for (int v = 1; v < n; ++v) d.add_edge((v - 1) / 2, v);
  const Decomposition dec = decompose_forest(d);
  validate_decomposition(d, dec);
  EXPECT_LE(dec.num_blocks(),
            static_cast<int>(std::floor(std::log2(n))) + 1);
}

TEST(Decomposition, CaterpillarTree) {
  // Spine 0-1-2-3 with a leaf hanging off each spine node.
  core::Dag d(8);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  d.add_edge(2, 3);
  d.add_edge(0, 4);
  d.add_edge(1, 5);
  d.add_edge(2, 6);
  d.add_edge(3, 7);
  const Decomposition dec = decompose_forest(d);
  validate_decomposition(d, dec);
  // Heavy path follows the spine and absorbs the last leaf (0-1-2-3-7);
  // the other three leaves are block-1 singletons.
  EXPECT_EQ(dec.num_blocks(), 2);
  EXPECT_EQ(dec.blocks[0].size(), 1u);
  EXPECT_EQ(dec.blocks[0][0], (std::vector<int>{0, 1, 2, 3, 7}));
  EXPECT_EQ(dec.blocks[1].size(), 3u);
}

TEST(Decomposition, RejectsNonForest) {
  core::Dag d(4);
  d.add_edge(0, 2);
  d.add_edge(1, 2);  // two preds
  d.add_edge(2, 3);
  d.add_edge(0, 3);  // also two preds; not in-forest either (0 has 2 succs)
  EXPECT_THROW(decompose_forest(d), util::CheckError);
}

TEST(ValidateDecomposition, CatchesMissingVertex) {
  core::Dag d(2);
  Decomposition dec;
  dec.blocks = {{{0}}};
  EXPECT_THROW(validate_decomposition(d, dec), util::CheckError);
}

TEST(ValidateDecomposition, CatchesBackwardEdge) {
  core::Dag d(2);
  d.add_edge(0, 1);
  Decomposition dec;
  dec.blocks = {{{1}}, {{0}}};
  EXPECT_THROW(validate_decomposition(d, dec), util::CheckError);
}

TEST(ValidateDecomposition, CatchesNonConsecutiveChainEdge) {
  core::Dag d(3);
  d.add_edge(0, 2);
  Decomposition dec;
  dec.blocks = {{{0, 1, 2}}};  // 0->2 not consecutive in the chain
  EXPECT_THROW(validate_decomposition(d, dec), util::CheckError);
}

class RandomForests : public ::testing::TestWithParam<int> {};

TEST_P(RandomForests, OutForestInvariantsAndLogBound) {
  util::Rng rng(2000 + GetParam());
  const int n = 10 + static_cast<int>(rng.uniform_below(120));
  core::Instance inst = core::make_out_forest(
      n, 2, 0.1, 4, core::MachineModel::uniform(0.3, 0.9), rng);
  const Decomposition dec = decompose_forest(inst.dag());
  validate_decomposition(inst.dag(), dec);
  EXPECT_EQ(dec.num_jobs(), n);
  EXPECT_LE(dec.num_blocks(),
            static_cast<int>(std::floor(std::log2(n))) + 1);
}

TEST_P(RandomForests, InForestInvariantsAndLogBound) {
  util::Rng rng(3000 + GetParam());
  const int n = 10 + static_cast<int>(rng.uniform_below(120));
  core::Instance inst = core::make_in_forest(
      n, 2, 0.1, 4, core::MachineModel::uniform(0.3, 0.9), rng);
  const Decomposition dec = decompose_forest(inst.dag());
  validate_decomposition(inst.dag(), dec);
  EXPECT_EQ(dec.num_jobs(), n);
  EXPECT_LE(dec.num_blocks(),
            static_cast<int>(std::floor(std::log2(n))) + 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomForests, ::testing::Range(0, 12));

}  // namespace
}  // namespace suu::chains
