#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace suu::util {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitWithNoTasks) {
  ThreadPool pool(2);
  pool.wait();  // must not hang
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZero) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForSingle) {
  ThreadPool pool(2);
  int x = 0;
  pool.parallel_for(1, [&](std::size_t) { ++x; });
  EXPECT_EQ(x, 1);
}

TEST(ThreadPool, SingleThreadPool) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(10, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order.size(), 10u);
}

TEST(ThreadPool, ExceptionPropagatesFromWait) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // Pool must stay usable afterwards.
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesFromParallelFor) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 50) {
                                     throw std::runtime_error("mid");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, WaitRethrowsFirstErrorOnlyOnce) {
  // The error slot is consumed by the rethrowing wait: a subsequent wait
  // (with no new failures) must return cleanly, not replay a stale error.
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("once"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  pool.wait();  // must not throw
}

TEST(ThreadPool, WaitKeepsFirstOfManyErrors) {
  ThreadPool pool(4);
  for (int i = 0; i < 32; ++i) {
    pool.submit([] { throw std::runtime_error("boom"); });
  }
  // Exactly one of the 32 exceptions is rethrown; the rest are dropped and
  // the pool drains fully.
  EXPECT_THROW(pool.wait(), std::runtime_error);
  std::atomic<int> c{0};
  pool.submit([&c] { c.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, WaitPreservesExceptionType) {
  // The service relies on typed errors surviving the pool boundary (e.g.
  // util::CheckError from a preparer running on a worker).
  ThreadPool pool(2);
  pool.submit([] { throw std::invalid_argument("typed"); });
  try {
    pool.wait();
    FAIL() << "wait did not rethrow";
  } catch (const std::invalid_argument& err) {
    EXPECT_STREQ(err.what(), "typed");
  }
}

TEST(ThreadPool, WaitRethrowPerWave) {
  // Each submit/wait wave reports its own failure independently.
  ThreadPool pool(3);
  for (int wave = 0; wave < 5; ++wave) {
    pool.submit([] { throw std::runtime_error("wave"); });
    pool.submit([] {});
    EXPECT_THROW(pool.wait(), std::runtime_error);
  }
}

TEST(ThreadPool, SeededWorkIsThreadCountInvariant) {
  // The determinism contract: per-index child streams give identical
  // results no matter how many workers execute the loop.
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    Rng master(99);
    std::vector<double> out(64);
    pool.parallel_for(64, [&](std::size_t i) {
      Rng r = master.child(i);
      out[i] = r.uniform01();
    });
    return out;
  };
  EXPECT_EQ(run(1), run(7));
}

TEST(ThreadPool, DefaultPoolUsable) {
  std::atomic<int> c{0};
  default_pool().parallel_for(32, [&](std::size_t) { c.fetch_add(1); });
  EXPECT_EQ(c.load(), 32);
}

TEST(ThreadPool, SizeReflectsConstruction) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ManyWaves) {
  ThreadPool pool(4);
  std::atomic<int> c{0};
  for (int wave = 0; wave < 20; ++wave) {
    for (int i = 0; i < 16; ++i) pool.submit([&c] { c.fetch_add(1); });
    pool.wait();
  }
  EXPECT_EQ(c.load(), 320);
}

}  // namespace
}  // namespace suu::util
