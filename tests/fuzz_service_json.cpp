// libFuzzer target for the service's hardened JSON parser (see fuzz_io.cpp
// for the two build modes and tests/corpus/service_json for the seeds).
//
// Contract: malformed text raises service::JsonError and nothing else; any
// ACCEPTED value dumps to canonical bytes that re-parse (dump output is
// valid JSON by construction) and re-dump identically — the protocol layer
// depends on that canonical form for byte-deterministic responses.
#include <cstddef>
#include <cstdint>
#include <string>

#include "service/json.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  suu::service::Json value;
  try {
    value = suu::service::Json::parse(text);
  } catch (const suu::service::JsonError&) {
    return 0;  // the typed rejection path
  }
  const std::string canonical = value.dump();
  // dump() must emit valid JSON: a JsonError escaping here is a finding.
  const suu::service::Json reparsed = suu::service::Json::parse(canonical);
  if (reparsed.dump() != canonical) {
    __builtin_trap();  // canonical form is not a fixed point
  }
  return 0;
}
