#include "sched/assignment.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace suu::sched {
namespace {

TEST(IntegralAssignment, AddAndQuery) {
  IntegralAssignment x(3, 2);
  x.add(0, 1, 4);
  x.add(1, 1, 2);
  x.add(0, 2, 3);
  EXPECT_EQ(x.load(0), 7);
  EXPECT_EQ(x.load(1), 2);
  EXPECT_EQ(x.max_load(), 7);
  EXPECT_EQ(x.job_length(1), 4);
  EXPECT_EQ(x.job_length(0), 0);
  EXPECT_EQ(x.steps_for(1).size(), 2u);
}

TEST(IntegralAssignment, AddAccumulatesSameMachine) {
  IntegralAssignment x(1, 1);
  x.add(0, 0, 2);
  x.add(0, 0, 3);
  EXPECT_EQ(x.steps_for(0).size(), 1u);
  EXPECT_EQ(x.job_length(0), 5);
}

TEST(IntegralAssignment, ZeroStepsIgnored) {
  IntegralAssignment x(1, 1);
  x.add(0, 0, 0);
  EXPECT_TRUE(x.steps_for(0).empty());
  EXPECT_THROW(x.add(0, 0, -1), util::CheckError);
}

TEST(IntegralAssignment, DeliveredMass) {
  // q = 0.5 -> ell = 1; q = 0.25 -> ell = 2.
  core::Instance inst = core::Instance::independent(1, 2, {0.5, 0.25});
  IntegralAssignment x(1, 2);
  x.add(0, 0, 3);
  x.add(1, 0, 1);
  EXPECT_DOUBLE_EQ(x.delivered_mass(inst, 0), 5.0);
  EXPECT_DOUBLE_EQ(x.delivered_mass(inst, 0, 1.5), 3.0 + 1.5);
}

TEST(ObliviousSchedule, FromAssignmentLengthIsMaxLoad) {
  IntegralAssignment x(3, 2);
  x.add(0, 0, 2);
  x.add(0, 1, 1);
  x.add(1, 2, 1);
  const ObliviousSchedule s = ObliviousSchedule::from_assignment(x);
  EXPECT_EQ(s.length(), 3);
  EXPECT_EQ(s.num_machines(), 2);
}

TEST(ObliviousSchedule, FromAssignmentDeliversExactSteps) {
  util::Rng rng(5);
  core::Instance inst = core::make_independent(
      6, 4, core::MachineModel::uniform(0.3, 0.9), rng);
  IntegralAssignment x(6, 4);
  for (int j = 0; j < 6; ++j) {
    for (int i = 0; i < 4; ++i) {
      x.add(i, j, static_cast<std::int64_t>(rng.uniform_below(4)));
    }
  }
  const ObliviousSchedule s = ObliviousSchedule::from_assignment(x);
  // Count per (machine, job) steps in the replayed schedule.
  std::vector<std::vector<std::int64_t>> counts(
      4, std::vector<std::int64_t>(6, 0));
  for (std::int64_t t = 0; t < s.length(); ++t) {
    const Assignment& a = s.step(t);
    for (int i = 0; i < 4; ++i) {
      if (a[static_cast<std::size_t>(i)] != kIdle) {
        ++counts[static_cast<std::size_t>(i)]
                [static_cast<std::size_t>(a[static_cast<std::size_t>(i)])];
      }
    }
  }
  for (int j = 0; j < 6; ++j) {
    std::vector<std::int64_t> expect(4, 0);
    for (const auto& [i, steps] : x.steps_for(j)) {
      expect[static_cast<std::size_t>(i)] = steps;
    }
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(counts[static_cast<std::size_t>(i)]
                      [static_cast<std::size_t>(j)],
                expect[static_cast<std::size_t>(i)])
          << "machine " << i << " job " << j;
    }
  }
}

TEST(ObliviousSchedule, EmptyAssignment) {
  IntegralAssignment x(2, 3);
  const ObliviousSchedule s = ObliviousSchedule::from_assignment(x);
  EXPECT_EQ(s.length(), 0);
  EXPECT_TRUE(s.empty());
}

TEST(ObliviousSchedule, AppendValidatesWidth) {
  ObliviousSchedule s(2);
  s.append({0, kIdle});
  EXPECT_EQ(s.length(), 1);
  EXPECT_THROW(s.append({0}), util::CheckError);
}

TEST(ObliviousSchedule, StepBoundsChecked) {
  ObliviousSchedule s(1);
  s.append({0});
  EXPECT_THROW(s.step(1), util::CheckError);
  EXPECT_THROW(s.step(-1), util::CheckError);
}

}  // namespace
}  // namespace suu::sched
