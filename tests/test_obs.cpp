// suu::obs coverage: histogram bucket arithmetic and quantiles, merge
// associativity/determinism (merge order must never change the rendered
// text), registry exposition determinism, the span-log ring, the runtime
// enable toggle, and the engine-level surfaces built on top — the
// `metrics` and `trace` wire methods and the --slow-log-ms sink.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/spanlog.hpp"
#include "service/engine.hpp"
#include "service/json.hpp"

using namespace suu;

namespace {

// The wire-format instance used across the service tests.
const char* kWireInstance = "suu-instance v1\n2 2\n0.5 0.8\n0.4 0.6\n1\n0 1\n";

std::string estimate_request(int id, int replications,
                             const std::string& trace = {}) {
  std::string req = "{\"id\":" + std::to_string(id) + ",\"method\":\"estimate\"";
  if (!trace.empty()) req += ",\"trace\":\"" + trace + "\"";
  req += ",\"params\":{\"instance\":";
  service::json_append_quoted(req, kWireInstance);
  req += ",\"solver\":\"suu-i-sem\",\"seed\":7,\"replications\":" +
         std::to_string(replications) + "}}";
  return req;
}

}  // namespace

// Tests asserting on recorded values are vacuous when observability is
// compiled out (-DSUU_OBS=OFF): every observe/add is a no-op. Skip them
// explicitly so an OFF build reports skips, not failures.
#define SKIP_IF_COMPILED_OUT() \
  if (!obs::compiled_in) GTEST_SKIP() << "observability compiled out"

// ------------------------------------------------------------- histogram

TEST(ObsHistogram, BucketIndexMatchesBucketBound) {
  // Every value must land in a bucket whose inclusive upper bound is the
  // smallest bound >= the value — checked exhaustively over small values
  // and across octave boundaries.
  for (std::uint64_t v = 0; v < 4096; ++v) {
    const int i = obs::Histogram::bucket_index(v);
    ASSERT_LT(i, obs::Histogram::kBuckets);
    EXPECT_LE(v, obs::Histogram::bucket_bound(i)) << "v=" << v;
    if (i > 0) {
      EXPECT_GT(v, obs::Histogram::bucket_bound(i - 1)) << "v=" << v;
    }
  }
  for (std::uint64_t v : {std::uint64_t{1} << 20, std::uint64_t{1} << 31,
                          (std::uint64_t{7} << 31)}) {
    for (std::uint64_t d : {std::uint64_t{0}, std::uint64_t{1}}) {
      const int i = obs::Histogram::bucket_index(v + d);
      ASSERT_LT(i, obs::Histogram::kBuckets);
      EXPECT_LE(v + d, obs::Histogram::bucket_bound(i));
    }
  }
  // Beyond the last finite bound: overflow bucket.
  EXPECT_EQ(obs::Histogram::bucket_index(~std::uint64_t{0}),
            obs::Histogram::kBuckets);
}

TEST(ObsHistogram, BoundsAreStrictlyIncreasingWithBoundedResolution) {
  for (int i = 1; i < obs::Histogram::kBuckets; ++i) {
    const std::uint64_t lo = obs::Histogram::bucket_bound(i - 1);
    const std::uint64_t hi = obs::Histogram::bucket_bound(i);
    ASSERT_GT(hi, lo);
    // <= 25% relative resolution from bucket 4 (value 4) upward.
    if (i >= 5) {
      EXPECT_LE(hi - lo, (lo + 3) / 4 + 1) << "i=" << i;
    }
  }
}

TEST(ObsHistogram, Quantiles) {
  SKIP_IF_COMPILED_OUT();
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.observe(v);
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 5050u);
  // Bucketed quantiles report the bucket's upper bound: within 25% above
  // the exact order statistic.
  const std::uint64_t p50 = s.quantile(0.50);
  EXPECT_GE(p50, 50u);
  EXPECT_LE(p50, 63u);
  const std::uint64_t p99 = s.quantile(0.99);
  EXPECT_GE(p99, 99u);
  EXPECT_LE(p99, 127u);
  EXPECT_EQ(s.quantile(0.0), s.quantile(1e-9));
  EXPECT_EQ(obs::Histogram::Snapshot{}.quantile(0.5), 0u);
}

TEST(ObsHistogram, MergeIsAssociativeAndOrderInvariant) {
  SKIP_IF_COMPILED_OUT();
  // Three shards with different latency profiles.
  obs::Histogram a, b, c;
  for (std::uint64_t v = 0; v < 200; ++v) a.observe(v * 3);
  for (std::uint64_t v = 0; v < 50; ++v) b.observe(1000 + v * 17);
  for (std::uint64_t v = 0; v < 7; ++v) c.observe(1u << (v + 10));

  const auto sa = a.snapshot(), sb = b.snapshot(), sc = c.snapshot();

  // (a+b)+c merged into one histogram...
  obs::Histogram abc;
  abc.merge_from(sa);
  abc.merge_from(sb);
  abc.merge_from(sc);
  // ...must render byte-identically to c+(b+a) built in any other order.
  obs::Histogram cba;
  cba.merge_from(sc);
  cba.merge_from(sb);
  cba.merge_from(sa);
  // ...and to a snapshot-level merge.
  obs::Histogram::Snapshot snap_merge = sa;
  snap_merge.merge_from(sb);
  snap_merge.merge_from(sc);

  const std::string r1 = obs::render_histogram_text("m", abc.snapshot());
  const std::string r2 = obs::render_histogram_text("m", cba.snapshot());
  const std::string r3 = obs::render_histogram_text("m", snap_merge);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r3);
  EXPECT_EQ(abc.count(), sa.count + sb.count + sc.count);

  // Rendering is deterministic: the same snapshot renders the same bytes.
  EXPECT_EQ(obs::render_histogram_text("m", abc.snapshot()), r1);
}

TEST(ObsHistogram, RenderedBucketsAreCumulativeWithSumAndCount) {
  SKIP_IF_COMPILED_OUT();
  obs::Histogram h;
  h.observe(0);
  h.observe(5);
  h.observe(5);
  h.observe(1000);
  const std::string text = obs::render_histogram_text("lat", h.snapshot());
  EXPECT_NE(text.find("lat_bucket{le=\"0\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"5\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 4"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 1010"), std::string::npos);
  EXPECT_NE(text.find("lat_count 4"), std::string::npos);

  // Registered histograms additionally get a # TYPE line from the registry
  // renderer.
  obs::Registry::global().histogram("test_lat_us").observe(5);
  const std::string reg_text = obs::Registry::global().render_prometheus();
  EXPECT_NE(reg_text.find("# TYPE test_lat_us histogram"), std::string::npos);
  obs::Registry::global().histogram("test_lat_us").reset();
}

// -------------------------------------------------------------- registry

TEST(ObsRegistry, HandlesAreStableAndRenderIsSortedDeterministic) {
  SKIP_IF_COMPILED_OUT();
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& c1 = reg.counter("test_zz_total");
  obs::Counter& c2 = reg.counter("test_aa_total");
  obs::Gauge& g = reg.gauge("test_gauge");
  // Same name -> same object, so static-reference call sites are safe.
  EXPECT_EQ(&c1, &reg.counter("test_zz_total"));
  EXPECT_EQ(reg.find_counter("test_zz_total"), &c1);
  EXPECT_EQ(reg.find_counter("test_never_registered"), nullptr);

  c1.add(3);
  c2.add(1);
  g.set(-7);
  const std::string text = reg.render_prometheus();
  const std::size_t aa = text.find("test_aa_total 1");
  const std::size_t zz = text.find("test_zz_total 3");
  const std::size_t gg = text.find("test_gauge -7");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  ASSERT_NE(gg, std::string::npos);
  EXPECT_LT(aa, zz);  // sorted by name
  EXPECT_EQ(text, reg.render_prometheus());  // byte-deterministic

  c1.reset();
  c2.reset();
  g.reset();
}

TEST(ObsRegistry, LabelVariantsShareOneTypeLine) {
  SKIP_IF_COMPILED_OUT();
  obs::Registry& reg = obs::Registry::global();
  reg.counter("test_labeled_total{method=\"a\"}").add(1);
  reg.counter("test_labeled_total{method=\"b\"}").add(2);
  const std::string text = reg.render_prometheus();
  std::size_t n = 0;
  for (std::size_t p = text.find("# TYPE test_labeled_total counter");
       p != std::string::npos;
       p = text.find("# TYPE test_labeled_total counter", p + 1)) {
    ++n;
  }
  EXPECT_EQ(n, 1u);
  reg.counter("test_labeled_total{method=\"a\"}").reset();
  reg.counter("test_labeled_total{method=\"b\"}").reset();
}

TEST(ObsToggle, DisabledMeansNoRecording) {
  SKIP_IF_COMPILED_OUT();
  obs::Histogram h;
  obs::Counter c;
  obs::set_enabled(false);
  h.observe(10);
  c.add(5);
  obs::set_enabled(true);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(c.value(), 0u);
  h.observe(10);
  c.add(5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(c.value(), 5u);
}

// --------------------------------------------------------------- spanlog

TEST(ObsSpanLog, RingKeepsNewestAndFiltersByTrace) {
  SKIP_IF_COMPILED_OUT();
  obs::SpanLog log(4);
  for (int i = 0; i < 6; ++i) {
    log.record({i % 2 == 0 ? "even" : "odd", "phase" + std::to_string(i),
                static_cast<std::uint64_t>(i), 1});
  }
  // Capacity 4: spans 0 and 1 were overwritten.
  const std::vector<obs::Span> all = log.snapshot();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all.front().name, "phase2");  // oldest first
  EXPECT_EQ(all.back().name, "phase5");

  const std::vector<obs::Span> even = log.snapshot("even");
  ASSERT_EQ(even.size(), 2u);
  EXPECT_EQ(even[0].name, "phase2");
  EXPECT_EQ(even[1].name, "phase4");

  log.clear();
  EXPECT_TRUE(log.snapshot().empty());
}

// ------------------------------------------------- engine-level surfaces

TEST(ObsEngine, MetricsWireMethodExposesRequestCountersAndHistograms) {
  SKIP_IF_COMPILED_OUT();
  service::Engine engine;
  (void)engine.handle(estimate_request(1, 4));
  const std::string resp = engine.handle("{\"id\":2,\"method\":\"metrics\"}");
  EXPECT_NE(resp.find("\"ok\":true"), std::string::npos);
  // The exposition text rides inside a JSON string; \n is escaped.
  EXPECT_NE(resp.find("suu_requests_total{method=\\\"estimate\\\"} 1"),
            std::string::npos)
      << resp.substr(0, 400);
  EXPECT_NE(resp.find("suu_request_us"), std::string::npos);
  EXPECT_NE(resp.find("suu_engine_received_total"), std::string::npos);
  EXPECT_NE(resp.find("suu_build_info"), std::string::npos);
}

TEST(ObsEngine, TraceMethodReturnsPhaseSpansForClientTraceId) {
  SKIP_IF_COMPILED_OUT();
  obs::SpanLog::global().clear();
  service::Engine engine;
  const std::string est = engine.handle(estimate_request(1, 4, "tr-test-1"));
  // The trace envelope key must be byte-invisible in the response.
  EXPECT_NE(est.find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(est.find("tr-test-1"), std::string::npos);

  const std::string resp = engine.handle(
      "{\"id\":2,\"method\":\"trace\",\"params\":{\"trace\":\"tr-test-1\"}}");
  EXPECT_NE(resp.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(resp.find("\"trace\":\"tr-test-1\""), std::string::npos);
  for (const char* phase : {"parse", "prepare", "solve", "respond"}) {
    EXPECT_NE(resp.find("\"name\":\"" + std::string(phase) + "\""),
              std::string::npos)
        << "missing phase " << phase << " in " << resp;
  }
  EXPECT_NE(resp.find("\"name\":\"request:estimate\""), std::string::npos);

  // Unknown trace id: ok, empty span list.
  const std::string none = engine.handle(
      "{\"id\":3,\"method\":\"trace\",\"params\":{\"trace\":\"no-such\"}}");
  EXPECT_NE(none.find("\"spans\":[]"), std::string::npos);

  // Malformed: missing/empty id and unknown params keys are typed errors.
  EXPECT_NE(engine.handle("{\"id\":4,\"method\":\"trace\"}").find("bad_params"),
            std::string::npos);
  EXPECT_NE(engine
                .handle("{\"id\":5,\"method\":\"trace\",\"params\":"
                        "{\"trace\":\"x\",\"bogus\":1}}")
                .find("bad_params"),
            std::string::npos);
}

TEST(ObsEngine, OverlongTraceIdIsATypedError) {
  service::Engine engine;
  std::string req = "{\"id\":1,\"method\":\"stats\",\"trace\":\"";
  req.append(200, 'x');
  req += "\"}";
  const std::string resp = engine.handle(req);
  EXPECT_NE(resp.find("bad_request"), std::string::npos);
}

TEST(ObsEngine, SlowLogNamesTheDominantPhase) {
  SKIP_IF_COMPILED_OUT();
  service::Engine::Config cfg;
  cfg.slow_log_ms = 1;
  std::vector<std::string> lines;
  cfg.slow_log_sink = [&lines](const std::string& line) {
    lines.push_back(line);
  };
  service::Engine engine(cfg);
  // Enough replications to clear 1ms anywhere; solve dominates.
  (void)engine.handle(estimate_request(1, 2000, "tr-slow"));
  ASSERT_FALSE(lines.empty());
  const std::string& line = lines.front();
  EXPECT_NE(line.find("slow-request trace=tr-slow"), std::string::npos)
      << line;
  EXPECT_NE(line.find("method=estimate"), std::string::npos);
  EXPECT_NE(line.find("dominant=solve"), std::string::npos) << line;
  EXPECT_NE(line.find("solve="), std::string::npos);
}
