#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace suu::util {
namespace {

TEST(Table, AlignedOutput) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name      | value |"), std::string::npos);
  EXPECT_NE(s.find("| long-name | 22    |"), std::string::npos);
}

TEST(Table, RowSizeMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), CheckError);
}

TEST(Table, CsvEscapesCommas) {
  Table t({"k", "v"});
  t.add_row({"x,y", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\",2"), std::string::npos);
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_pm(1.5, 0.25, 2), "1.50 ± 0.25");
}

TEST(Args, ParsesKeyValue) {
  const char* argv[] = {"prog", "--n=32", "--rho=1.5", "--tag=hello",
                        "--flag"};
  Args args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("n", 0), 32);
  EXPECT_DOUBLE_EQ(args.get_double("rho", 0.0), 1.5);
  EXPECT_EQ(args.get_string("tag", ""), "hello");
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.has("absent"));
}

TEST(Args, Defaults) {
  const char* argv[] = {"prog"};
  Args args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_EQ(args.get_string("s", "d"), "d");
}

TEST(Args, IgnoresPositional) {
  const char* argv[] = {"prog", "positional", "-x", "--ok=1"};
  Args args(4, const_cast<char**>(argv));
  EXPECT_TRUE(args.has("ok"));
}

TEST(Check, MacroThrowsWithMessage) {
  try {
    SUU_CHECK_MSG(false, "ctx " << 42);
    FAIL();
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

TEST(Check, PassingCheckNoThrow) {
  EXPECT_NO_THROW(SUU_CHECK(1 + 1 == 2));
}

}  // namespace
}  // namespace suu::util
