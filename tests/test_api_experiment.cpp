#include "api/experiment.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "algos/suu_i.hpp"
#include "core/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace suu::api {
namespace {

std::shared_ptr<const core::Instance> small_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  return std::make_shared<const core::Instance>(core::make_independent(
      8, 3, core::MachineModel::uniform(0.3, 0.9), rng));
}

ExperimentRunner::Options base_options(unsigned threads) {
  ExperimentRunner::Options opt;
  opt.seed = 42;
  opt.replications = 24;
  opt.threads = threads;
  return opt;
}

void fill(ExperimentRunner& runner) {
  const auto inst = small_instance(5);
  for (const std::string& solver :
       {std::string("suu-i-sem"), std::string("round-robin"),
        std::string("all-on-one")}) {
    Cell cell;
    cell.instance_label = "small";
    cell.instance = inst;
    cell.solver = solver;
    cell.lower_bound = 2.0;
    cell.metrics = {{"makespan2",
                     [](const sim::Policy&, const sim::ExecResult& res) {
                       return static_cast<double>(res.makespan);
                     }}};
    runner.add(std::move(cell));
  }
}

std::string json_of(unsigned threads, unsigned cell_threads = 1) {
  ExperimentRunner::Options opt = base_options(threads);
  opt.cell_threads = cell_threads;
  ExperimentRunner runner(opt);
  fill(runner);
  runner.run();
  std::ostringstream os;
  runner.print_json(os);
  return os.str();
}

TEST(ExperimentRunner, ByteIdenticalAcrossThreadCounts) {
  const std::string serial = json_of(1);
  const std::string pooled2 = json_of(2);
  const std::string pooled5 = json_of(5);
  const std::string default_pool = json_of(0);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, pooled2);
  EXPECT_EQ(serial, pooled5);
  EXPECT_EQ(serial, default_pool);
}

TEST(ExperimentRunner, ByteIdenticalAcrossCellThreadCounts) {
  // Cross-cell fan-out must not change a byte either, at any width, nor
  // when combined with (ignored) replication threads.
  const std::string serial = json_of(1);
  EXPECT_EQ(serial, json_of(1, 2));
  EXPECT_EQ(serial, json_of(1, 5));
  EXPECT_EQ(serial, json_of(1, 0));
  EXPECT_EQ(serial, json_of(4, 3));
}

TEST(ExperimentRunner, CellsAreSeedIndependent) {
  // A cell's numbers depend only on its index and the master seed — adding
  // more cells after it must not change them.
  ExperimentRunner one(base_options(1));
  const auto inst = small_instance(5);
  Cell cell;
  cell.instance_label = "small";
  cell.instance = inst;
  cell.solver = "round-robin";
  one.add(cell);
  const double lone = one.run()[0].makespan.mean;

  ExperimentRunner many(base_options(1));
  many.add(cell);
  Cell extra = cell;
  extra.solver = "all-on-one";
  many.add(std::move(extra));
  EXPECT_DOUBLE_EQ(many.run()[0].makespan.mean, lone);
}

TEST(ExperimentRunner, ResolvesAutoAndComputesRatios) {
  ExperimentRunner runner(base_options(1));
  const auto inst = small_instance(9);
  Cell cell;
  cell.instance_label = "auto-cell";
  cell.instance = inst;
  cell.solver = "auto";
  cell.lower_bound = 2.0;
  runner.add(std::move(cell));
  const CellResult& r = runner.run()[0];
  EXPECT_EQ(r.solver, "suu-i-sem");
  EXPECT_EQ(r.n, 8);
  EXPECT_EQ(r.m, 3);
  EXPECT_GT(r.makespan.mean, 0.0);
  EXPECT_DOUBLE_EQ(r.ratio, r.makespan.mean / 2.0);
  EXPECT_DOUBLE_EQ(r.ratio_ci, r.makespan.ci95_half / 2.0);
  EXPECT_EQ(static_cast<int>(r.samples.count()), r.replications);
}

TEST(ExperimentRunner, MetricsCollectPerReplication) {
  ExperimentRunner runner(base_options(3));
  fill(runner);
  const auto& res = runner.run();
  for (const CellResult& r : res) {
    const util::Sampler& s = r.metric("makespan2");
    ASSERT_EQ(s.count(), r.samples.count());
    // The probe records the makespan, so the samplers must agree exactly.
    EXPECT_DOUBLE_EQ(s.mean(), r.samples.mean());
  }
  EXPECT_THROW(res[0].metric("nope"), util::CheckError);
}

TEST(ExperimentRunner, FactoryOverrideBypassesRegistry) {
  ExperimentRunner runner(base_options(1));
  Cell cell;
  cell.instance_label = "custom";
  cell.instance = small_instance(11);
  cell.factory = [] { return std::make_unique<algos::SuuISemPolicy>(); };
  cell.factory_label = "my-policy";
  runner.add(std::move(cell));
  EXPECT_EQ(runner.run()[0].solver, "my-policy");
}

TEST(ExperimentRunner, StepCapThrowsUnlessSkipped) {
  ExperimentRunner runner(base_options(1));
  runner.options().step_cap = 1;  // nothing finishes in one step, usually
  fill(runner);
  EXPECT_THROW(runner.run(), util::CheckError);

  ExperimentRunner skipping(base_options(1));
  skipping.options().step_cap = 1;
  skipping.options().skip_capped = true;
  const auto inst = small_instance(5);
  Cell cell;
  cell.instance_label = "capped";
  cell.instance = inst;
  cell.solver = "round-robin";
  skipping.add(std::move(cell));
  // Either every replication luckily finishes in one step (impossible at
  // these sizes) or the capped counter reflects the drops; if ALL
  // replications are dropped the runner must refuse.
  EXPECT_THROW(skipping.run(), util::CheckError);
}

TEST(ExperimentRunner, TableAndJsonContainEveryCell) {
  ExperimentRunner runner(base_options(2));
  fill(runner);
  runner.run();
  EXPECT_EQ(runner.table().rows(), 3u);
  std::ostringstream os;
  runner.print_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"solver\":\"suu-i-sem\""), std::string::npos);
  EXPECT_NE(json.find("\"solver\":\"round-robin\""), std::string::npos);
  EXPECT_NE(json.find("\"makespan2_mean\":"), std::string::npos);
}

TEST(ExperimentRunner, GridHelperBuildsCrossProduct) {
  ExperimentRunner runner(base_options(1));
  runner.add_grid({{"a", small_instance(1)}, {"b", small_instance(2)}},
                  {"round-robin", "all-on-one"});
  const auto& res = runner.run();
  ASSERT_EQ(res.size(), 4u);
  EXPECT_EQ(res[0].instance_label, "a");
  EXPECT_EQ(res[0].solver, "round-robin");
  EXPECT_EQ(res[3].instance_label, "b");
  EXPECT_EQ(res[3].solver, "all-on-one");
  EXPECT_EQ(res[0].lower_bound, 0.0);  // no auto bound requested
}

TEST(ExperimentRunner, GridHelperAttachesAutoLowerBounds) {
  ExperimentRunner runner(base_options(1));
  const auto inst = small_instance(3);
  runner.add_grid({{"a", inst}}, {"round-robin", "all-on-one"}, {},
                  /*auto_lower_bound=*/true);
  const auto& res = runner.run();
  const double expect = lower_bound_auto(*inst).value;
  ASSERT_EQ(res.size(), 2u);
  for (const CellResult& r : res) {
    EXPECT_DOUBLE_EQ(r.lower_bound, expect);
    EXPECT_DOUBLE_EQ(r.ratio, r.makespan.mean / expect);
  }
}

TEST(ExperimentRunner, InvalidCellsRejected) {
  ExperimentRunner runner(base_options(1));
  Cell no_instance;
  no_instance.solver = "round-robin";
  EXPECT_THROW(runner.add(std::move(no_instance)), util::CheckError);

  Cell no_solver;
  no_solver.instance = small_instance(1);
  no_solver.solver = "";
  EXPECT_THROW(runner.add(std::move(no_solver)), util::CheckError);
}

}  // namespace
}  // namespace suu::api
