#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/dag.hpp"
#include "core/generators.hpp"
#include "core/instance.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace suu::core {
namespace {

TEST(Dag, EmptyDagProperties) {
  Dag d(5);
  EXPECT_EQ(d.num_vertices(), 5);
  EXPECT_EQ(d.num_edges(), 0);
  EXPECT_TRUE(d.is_empty());
  EXPECT_TRUE(d.is_chains());
  EXPECT_TRUE(d.is_out_forest());
  EXPECT_TRUE(d.is_in_forest());
  EXPECT_EQ(d.chains().size(), 5u);
  EXPECT_EQ(d.roots().size(), 5u);
}

TEST(Dag, AddEdgeAndAdjacency) {
  Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  EXPECT_EQ(d.num_edges(), 2);
  EXPECT_EQ(d.succs(0), std::vector<int>{1});
  EXPECT_EQ(d.preds(2), std::vector<int>{1});
  EXPECT_TRUE(d.preds(0).empty());
}

TEST(Dag, RejectsSelfLoopAndDuplicate) {
  Dag d(3);
  EXPECT_THROW(d.add_edge(1, 1), util::CheckError);
  d.add_edge(0, 1);
  EXPECT_THROW(d.add_edge(0, 1), util::CheckError);
  EXPECT_THROW(d.add_edge(0, 9), util::CheckError);
}

TEST(Dag, TopoOrderRespectsEdges) {
  Dag d(6);
  d.add_edge(5, 0);
  d.add_edge(5, 2);
  d.add_edge(4, 0);
  d.add_edge(4, 1);
  d.add_edge(2, 3);
  d.add_edge(3, 1);
  const auto order = d.topo_order();
  ASSERT_EQ(order.size(), 6u);
  std::vector<int> pos(6);
  for (int k = 0; k < 6; ++k) pos[order[static_cast<std::size_t>(k)]] = k;
  for (int v = 0; v < 6; ++v) {
    for (const int s : d.succs(v)) EXPECT_LT(pos[v], pos[s]);
  }
}

TEST(Dag, CycleDetected) {
  Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  d.add_edge(2, 0);
  EXPECT_THROW(d.topo_order(), util::CheckError);
  EXPECT_THROW(d.validate_acyclic(), util::CheckError);
}

TEST(Dag, ChainRecognitionAndExtraction) {
  Dag d(6);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  d.add_edge(3, 4);
  EXPECT_TRUE(d.is_chains());
  const auto chains = d.chains();
  ASSERT_EQ(chains.size(), 3u);  // {0,1,2}, {3,4}, {5}
  std::set<int> covered;
  for (const auto& c : chains) {
    for (const int v : c) covered.insert(v);
  }
  EXPECT_EQ(covered.size(), 6u);
  // Find the 3-chain and check order.
  for (const auto& c : chains) {
    if (c.size() == 3) {
      EXPECT_EQ(c, (std::vector<int>{0, 1, 2}));
    }
  }
}

TEST(Dag, BranchingIsNotChains) {
  Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  EXPECT_FALSE(d.is_chains());
  EXPECT_TRUE(d.is_out_forest());
  EXPECT_FALSE(d.is_in_forest());
  EXPECT_THROW(d.chains(), util::CheckError);
}

TEST(Dag, MergingIsInForestNotOut) {
  Dag d(3);
  d.add_edge(0, 2);
  d.add_edge(1, 2);
  EXPECT_FALSE(d.is_out_forest());
  EXPECT_TRUE(d.is_in_forest());
}

TEST(Instance, EllValuesAndClamps) {
  // q = 0.5 -> ell = 1; q = 0.25 -> ell = 2; q = 1 -> ell = 0; q = 0 -> 64.
  Instance inst = Instance::independent(1, 4, {0.5, 0.25, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(inst.ell(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(inst.ell(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(inst.ell(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(inst.ell(3, 0), Instance::kMaxEll);
  EXPECT_DOUBLE_EQ(inst.total_ell(0), 67.0);
  EXPECT_DOUBLE_EQ(inst.max_ell(0), 64.0);
  EXPECT_DOUBLE_EQ(inst.ell_capped(1, 0, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(inst.ell_capped(0, 0, 1.5), 1.0);
}

TEST(Instance, RejectsBadProbability) {
  EXPECT_THROW(Instance::independent(1, 1, {1.5}), util::CheckError);
  EXPECT_THROW(Instance::independent(1, 1, {-0.1}), util::CheckError);
}

TEST(Instance, RejectsJobWithNoCapableMachine) {
  EXPECT_THROW(Instance::independent(1, 2, {1.0, 1.0}), util::CheckError);
}

TEST(Instance, RejectsWrongSizes) {
  EXPECT_THROW(Instance::independent(2, 2, {0.5, 0.5, 0.5}),
               util::CheckError);
  EXPECT_THROW(Instance(2, 1, {0.5, 0.5}, Dag(3)), util::CheckError);
}

TEST(Instance, RejectsCyclicDag) {
  Dag d(2);
  d.add_edge(0, 1);
  d.add_edge(1, 0);
  EXPECT_THROW(Instance(2, 1, {0.5, 0.5}, std::move(d)), util::CheckError);
}

TEST(Instance, QAccessorLayout) {
  // Row-major by job: q[j*m + i].
  Instance inst = Instance::independent(2, 2, {0.1, 0.2, 0.3, 0.4});
  EXPECT_DOUBLE_EQ(inst.q(0, 0), 0.1);
  EXPECT_DOUBLE_EQ(inst.q(1, 0), 0.2);
  EXPECT_DOUBLE_EQ(inst.q(0, 1), 0.3);
  EXPECT_DOUBLE_EQ(inst.q(1, 1), 0.4);
}

TEST(Generators, UniformInRange) {
  util::Rng rng(1);
  const auto model = MachineModel::uniform(0.2, 0.8);
  Instance inst = make_independent(10, 5, model, rng);
  for (int j = 0; j < 10; ++j) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_GE(inst.q(i, j), 0.2);
      EXPECT_LT(inst.q(i, j), 0.8);
    }
  }
}

TEST(Generators, IdenticalModel) {
  util::Rng rng(2);
  Instance inst = make_independent(4, 3, MachineModel::identical(0.5), rng);
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(inst.q(i, j), 0.5);
  }
}

TEST(Generators, ClassesHasFastAndSlow) {
  util::Rng rng(3);
  Instance inst = make_independent(8, 10, MachineModel::classes(), rng);
  // Machine 0 and 1 are "fast" (frac 0.2 of 10); the rest slow.
  for (int j = 0; j < 8; ++j) {
    EXPECT_LE(inst.q(0, j), 0.3);
    EXPECT_GE(inst.q(5, j), 0.7);
  }
}

TEST(Generators, SparseGuaranteesCapableMachine) {
  util::Rng rng(4);
  Instance inst =
      make_independent(30, 4, MachineModel::sparse(0.05, 0.3, 0.6), rng);
  for (int j = 0; j < 30; ++j) {
    double best = 1.0;
    for (int i = 0; i < 4; ++i) best = std::min(best, inst.q(i, j));
    EXPECT_LT(best, 1.0) << "job " << j;
  }
}

TEST(Generators, ChainDagShape) {
  const Dag d = make_chain_dag({3, 1, 2});
  EXPECT_EQ(d.num_vertices(), 6);
  EXPECT_TRUE(d.is_chains());
  const auto chains = d.chains();
  ASSERT_EQ(chains.size(), 3u);
  EXPECT_EQ(chains[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(chains[1], (std::vector<int>{3}));
  EXPECT_EQ(chains[2], (std::vector<int>{4, 5}));
}

TEST(Generators, MakeChainsInstance) {
  util::Rng rng(5);
  Instance inst =
      make_chains(4, 2, 5, 3, MachineModel::uniform(0.3, 0.9), rng);
  EXPECT_TRUE(inst.dag().is_chains());
  const auto chains = inst.dag().chains();
  EXPECT_EQ(chains.size(), 4u);
  for (const auto& c : chains) {
    EXPECT_GE(c.size(), 2u);
    EXPECT_LE(c.size(), 5u);
  }
}

class ForestGenerator : public ::testing::TestWithParam<int> {};

TEST_P(ForestGenerator, OutForestValid) {
  util::Rng rng(600 + GetParam());
  Instance inst = make_out_forest(40, 4, 0.2, 3,
                                  MachineModel::uniform(0.3, 0.9), rng);
  EXPECT_TRUE(inst.dag().is_out_forest());
  inst.dag().validate_acyclic();
  for (int v = 0; v < 40; ++v) {
    EXPECT_LE(inst.dag().succs(v).size(), 3u);
  }
}

TEST_P(ForestGenerator, InForestValid) {
  util::Rng rng(700 + GetParam());
  Instance inst =
      make_in_forest(40, 4, 0.2, 3, MachineModel::uniform(0.3, 0.9), rng);
  EXPECT_TRUE(inst.dag().is_in_forest());
  inst.dag().validate_acyclic();
}

INSTANTIATE_TEST_SUITE_P(Sweep, ForestGenerator, ::testing::Range(0, 8));

// ---- Content fingerprint (keys the api::PrecomputeCache).

TEST(InstanceFingerprint, EqualContentCollides) {
  util::Rng rng_a(31), rng_b(31);
  const Instance a =
      make_independent(10, 4, MachineModel::uniform(0.3, 0.9), rng_a);
  const Instance b =
      make_independent(10, 4, MachineModel::uniform(0.3, 0.9), rng_b);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), 0u);
}

TEST(InstanceFingerprint, QPerturbationChangesIt) {
  util::Rng rng(32);
  std::vector<double> q = gen_q(6, 3, MachineModel::uniform(0.3, 0.9), rng);
  const Instance base = Instance::independent(6, 3, q);
  std::vector<double> q2 = q;
  q2[7] += 1e-12;  // below any solver tolerance, still a different instance
  const Instance perturbed = Instance::independent(6, 3, q2);
  EXPECT_NE(base.fingerprint(), perturbed.fingerprint());
}

TEST(InstanceFingerprint, DagEdgesChangeIt) {
  util::Rng rng(33);
  const std::vector<double> q =
      gen_q(4, 2, MachineModel::uniform(0.3, 0.9), rng);
  const Instance independent = Instance::independent(4, 2, q);
  Dag chain(4);
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);
  const Instance chained = Instance(4, 2, q, std::move(chain));
  EXPECT_NE(independent.fingerprint(), chained.fingerprint());

  Dag other(4);
  other.add_edge(0, 1);
  other.add_edge(2, 3);
  const Instance rewired = Instance(4, 2, q, std::move(other));
  EXPECT_NE(chained.fingerprint(), rewired.fingerprint());
  EXPECT_NE(independent.fingerprint(), rewired.fingerprint());
}

TEST(InstanceFingerprint, DimensionsChangeIt) {
  // Same flat q data read as 6x2 vs 2x6 must not collide.
  const std::vector<double> q = {0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
                                 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  const Instance a = Instance::independent(6, 2, q);
  const Instance b = Instance::independent(2, 6, q);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace suu::core
