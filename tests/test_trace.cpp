#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "algos/baselines.hpp"
#include "algos/suu_c.hpp"
#include "algos/suu_i.hpp"
#include "algos/suu_t.hpp"
#include "core/generators.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"

namespace suu::sim {
namespace {

class FirstEligiblePolicy : public Policy {
 public:
  std::string name() const override { return "first-eligible"; }
  sched::Assignment decide(const ExecState& state) override {
    sched::Assignment a(
        static_cast<std::size_t>(state.instance().num_machines()),
        sched::kIdle);
    for (int j = 0; j < state.instance().num_jobs(); ++j) {
      if (state.eligible(j)) {
        std::fill(a.begin(), a.end(), j);
        break;
      }
    }
    return a;
  }
};

TEST(Trace, RecordsStepsAndCompletions) {
  core::Instance inst = core::Instance::independent(2, 1, {0.0, 0.0});
  FirstEligiblePolicy p;
  Trace trace;
  ExecConfig cfg;
  cfg.trace = &trace;
  const ExecResult r = execute(inst, p, cfg);
  EXPECT_EQ(r.makespan, 2);
  EXPECT_TRUE(trace.finished);
  ASSERT_EQ(trace.length(), 2);
  EXPECT_EQ(trace.steps[0].completions, (std::vector<int>{0}));
  EXPECT_EQ(trace.steps[1].completions, (std::vector<int>{1}));
  EXPECT_NO_THROW(validate_trace(inst, trace));
}

TEST(Trace, ValidatorAcceptsRealExecutions) {
  util::Rng rng(3);
  core::Instance inst = core::make_independent(
      6, 3, core::MachineModel::uniform(0.3, 0.9), rng);
  FirstEligiblePolicy p;
  Trace trace;
  ExecConfig cfg;
  cfg.trace = &trace;
  cfg.seed = 5;
  execute(inst, p, cfg);
  EXPECT_NO_THROW(validate_trace(inst, trace));
}

TEST(Trace, ValidatorCatchesDoubleCompletion) {
  core::Instance inst = core::Instance::independent(1, 1, {0.5});
  Trace trace;
  trace.n = 1;
  trace.m = 1;
  trace.finished = true;
  trace.steps.push_back({{0}, {0}});
  trace.steps.push_back({{0}, {0}});  // completes again
  EXPECT_THROW(validate_trace(inst, trace), util::CheckError);
}

TEST(Trace, ValidatorCatchesCompletionWithoutWork) {
  core::Instance inst = core::Instance::independent(2, 1, {0.5, 0.5});
  Trace trace;
  trace.n = 2;
  trace.m = 1;
  trace.finished = true;
  trace.steps.push_back({{0}, {1}});  // job 1 completes but machine ran 0
  trace.steps.push_back({{0}, {0}});
  EXPECT_THROW(validate_trace(inst, trace), util::CheckError);
}

TEST(Trace, ValidatorCatchesPrecedenceViolation) {
  core::Instance inst(2, 1, {0.5, 0.5}, core::make_chain_dag({2}));
  Trace trace;
  trace.n = 2;
  trace.m = 1;
  trace.finished = true;
  trace.steps.push_back({{1}, {1}});  // job 1 before its predecessor
  trace.steps.push_back({{0}, {0}});
  EXPECT_THROW(validate_trace(inst, trace), util::CheckError);
}

TEST(Trace, ValidatorCatchesUnfinished) {
  core::Instance inst = core::Instance::independent(1, 1, {0.5});
  Trace trace;
  trace.n = 1;
  trace.m = 1;
  trace.finished = false;
  TraceCheckOptions opt;
  EXPECT_THROW(validate_trace(inst, trace, opt), util::CheckError);
  opt.require_finished = false;
  EXPECT_NO_THROW(validate_trace(inst, trace, opt));
}

TEST(Trace, BlockedAssignmentFlaggedWhenForbidden) {
  core::Instance inst(2, 1, {0.0, 0.5}, core::make_chain_dag({2}));
  Trace trace;
  trace.n = 2;
  trace.m = 1;
  trace.finished = false;
  trace.steps.push_back({{1}, {}});  // machine aimed at the blocked job
  TraceCheckOptions opt;
  opt.require_finished = false;
  EXPECT_NO_THROW(validate_trace(inst, trace, opt));
  opt.forbid_blocked_assignments = true;
  EXPECT_THROW(validate_trace(inst, trace, opt), util::CheckError);
}

TEST(TraceStats, CountsWorkAndWaste) {
  core::Instance inst = core::Instance::independent(2, 2,
                                                    {0.0, 1.0, 1.0, 0.0});
  Trace trace;
  trace.n = 2;
  trace.m = 2;
  trace.finished = true;
  // Step 0: m0 -> j0 (completes), m1 -> j1 (completes).
  trace.steps.push_back({{0, 1}, {0, 1}});
  const TraceStats st = trace_stats(inst, trace);
  EXPECT_EQ(st.work_per_job[0], 1);
  EXPECT_EQ(st.work_per_job[1], 1);
  EXPECT_EQ(st.wasted_steps, 0);
  EXPECT_EQ(st.total_machine_steps, 2);
  EXPECT_DOUBLE_EQ(st.mass_per_job[0], core::Instance::kMaxEll);
}

TEST(TraceStats, WasteCountsCompletedTargets) {
  core::Instance inst = core::Instance::independent(1, 1, {0.0});
  Trace trace;
  trace.n = 1;
  trace.m = 1;
  trace.finished = true;
  trace.steps.push_back({{0}, {0}});
  trace.steps.push_back({{0}, {}});  // works a completed job
  const TraceStats st = trace_stats(inst, trace);
  EXPECT_EQ(st.wasted_steps, 1);
}

TEST(Gantt, RendersMachinesStepsAndMarkers) {
  core::Instance inst(2, 2, {0.0, 1.0, 1.0, 0.0},
                      core::make_chain_dag({2}));
  Trace trace;
  trace.n = 2;
  trace.m = 2;
  trace.finished = true;
  // Step 0: m0 works job0 (completes), m1 aims at blocked job1 -> 'x'.
  trace.steps.push_back({{0, 1}, {0}});
  // Step 1: m0 idle, m1 works job1 (completes).
  trace.steps.push_back({{sched::kIdle, 1}, {1}});
  std::ostringstream os;
  render_gantt(os, inst, trace);
  const std::string s = os.str();
  EXPECT_NE(s.find("m0 |a."), std::string::npos) << s;
  EXPECT_NE(s.find("m1 |xb"), std::string::npos) << s;
  EXPECT_NE(s.find("2 steps total"), std::string::npos);
}

TEST(Gantt, TruncatesLongTraces) {
  core::Instance inst = core::Instance::independent(1, 1, {0.5});
  Trace trace;
  trace.n = 1;
  trace.m = 1;
  trace.finished = true;
  for (int t = 0; t < 50; ++t) trace.steps.push_back({{0}, {}});
  trace.steps.push_back({{0}, {0}});
  std::ostringstream os;
  render_gantt(os, inst, trace, 10);
  EXPECT_NE(os.str().find("..."), std::string::npos);
  EXPECT_NE(os.str().find("51 steps total"), std::string::npos);
}

// ---- The cross-product property suite: every policy on every family
// produces a valid trace, and the paper-grade policies also satisfy the
// stronger no-blocked-work invariant.

struct PolicyCase {
  std::string name;
  bool precedence_aware;  // must satisfy (V5)
};

class AllPoliciesProduceValidTraces
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AllPoliciesProduceValidTraces, OnChainsAndForests) {
  const auto [seed, family] = GetParam();
  util::Rng rng(7000 + static_cast<std::uint64_t>(seed) * 13 +
                static_cast<std::uint64_t>(family));
  core::Instance inst =
      family == 0
          ? core::make_independent(8, 3,
                                   core::MachineModel::uniform(0.3, 0.9),
                                   rng)
          : family == 1
                ? core::make_chains(3, 2, 4, 3,
                                    core::MachineModel::uniform(0.3, 0.9),
                                    rng)
                : core::make_out_forest(
                      10, 3, 0.2, 3,
                      core::MachineModel::uniform(0.3, 0.9), rng);

  std::vector<std::pair<std::unique_ptr<Policy>, bool>> policies;
  policies.emplace_back(std::make_unique<algos::AllOnOnePolicy>(), true);
  policies.emplace_back(std::make_unique<algos::RoundRobinPolicy>(), true);
  policies.emplace_back(std::make_unique<algos::BestMachinePolicy>(), true);
  policies.emplace_back(std::make_unique<algos::AdaptiveGreedyPolicy>(),
                        true);
  if (family == 1) {
    policies.emplace_back(std::make_unique<algos::SuuCPolicy>(), true);
  }
  if (family >= 1) {
    policies.emplace_back(std::make_unique<algos::SuuTPolicy>(), true);
  }
  if (family == 0) {
    policies.emplace_back(std::make_unique<algos::SuuISemPolicy>(), true);
    policies.emplace_back(std::make_unique<algos::SuuIOblPolicy>(), true);
    policies.emplace_back(std::make_unique<algos::GreedyLrPolicy>(), true);
  }

  for (auto& [policy, aware] : policies) {
    Trace trace;
    ExecConfig cfg;
    cfg.trace = &trace;
    cfg.seed = 900 + static_cast<std::uint64_t>(seed);
    const ExecResult r = execute(inst, *policy, cfg);
    ASSERT_FALSE(r.capped) << policy->name();
    TraceCheckOptions opt;
    opt.forbid_blocked_assignments = aware;
    EXPECT_NO_THROW(validate_trace(inst, trace, opt)) << policy->name();
    // Every completed job must have accrued positive mass.
    const TraceStats st = trace_stats(inst, trace);
    for (int j = 0; j < inst.num_jobs(); ++j) {
      EXPECT_GT(st.mass_per_job[static_cast<std::size_t>(j)], 0.0)
          << policy->name() << " job " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllPoliciesProduceValidTraces,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace suu::sim
