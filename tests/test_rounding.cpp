#include <gtest/gtest.h>

#include <cmath>

#include "core/generators.hpp"
#include "rounding/lp1.hpp"
#include "rounding/lp2.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace suu::rounding {
namespace {

std::vector<int> all_jobs(const core::Instance& inst) {
  std::vector<int> v(static_cast<std::size_t>(inst.num_jobs()));
  for (int j = 0; j < inst.num_jobs(); ++j) v[static_cast<std::size_t>(j)] = j;
  return v;
}

TEST(Lp1, SingleJobClosedForm) {
  // One job, two machines with ell = 1 and ell = 2 (q = 1/2, 1/4), L = 1/2:
  // ell' = 1/2 both; the demand L splits evenly, so t* = L / sum(ell') =
  // 0.5 / 1.0 = 0.5.
  core::Instance inst = core::Instance::independent(1, 2, {0.5, 0.25});
  const Lp1Fractional f = solve_lp1(inst, {0}, 0.5);
  EXPECT_NEAR(f.t, 0.5, 1e-6);
  EXPECT_NEAR(f.lower_bound, 0.5, 1e-6);
}

TEST(Lp1, TrimRemovesPaperSurplus) {
  // The Lemma 2 flow delivers ~6L mass; trimming brings single-job
  // assignments back to the minimum number of steps.
  core::Instance inst = core::Instance::independent(1, 1, {0.5});  // ell = 1
  const Lp1Fractional f = solve_lp1(inst, {0}, 1.0);
  const auto untrimmed = round_lp1(inst, {0}, 1.0, f, /*trim=*/false);
  const auto trimmed = round_lp1(inst, {0}, 1.0, f, /*trim=*/true);
  EXPECT_GE(untrimmed.job_length(0), trimmed.job_length(0));
  EXPECT_EQ(trimmed.job_length(0), 1);  // one step of ell=1 covers L=1
  EXPECT_GE(trimmed.delivered_mass(inst, 0, 1.0), 1.0 - 1e-9);
}

TEST(Lp1, TruncationAppliesCap) {
  // ell = 4 on the only machine, L = 1: ell' = 1 so t* = 1 (not 1/4).
  core::Instance inst = core::Instance::independent(1, 1, {0.0625});
  const Lp1Fractional f = solve_lp1(inst, {0}, 1.0);
  EXPECT_NEAR(f.t, 1.0, 1e-6);
}

TEST(Lp1, RejectsEmptyOrDuplicateJobs) {
  core::Instance inst = core::Instance::independent(2, 1, {0.5, 0.5});
  EXPECT_THROW(solve_lp1(inst, {}, 0.5), util::CheckError);
  EXPECT_THROW(solve_lp1(inst, {0, 0}, 0.5), util::CheckError);
}

struct RoundingCase {
  int n, m, seed;
  double L;
  core::MachineModel::Kind kind;
};

class Lemma2Rounding
    : public ::testing::TestWithParam<std::tuple<int, int, double, int>> {};

TEST_P(Lemma2Rounding, GuaranteesHold) {
  const auto [n, m, L, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);
  const auto model = (seed % 2 == 0)
                         ? core::MachineModel::uniform(0.2, 0.95)
                         : core::MachineModel::sparse(0.5, 0.2, 0.9);
  core::Instance inst = core::make_independent(n, m, model, rng);
  const auto jobs = all_jobs(inst);

  const Lp1Fractional frac = solve_lp1(inst, jobs, L);
  const sched::IntegralAssignment x = round_lp1(inst, jobs, L, frac);

  // Lemma 2 part 1: every job receives truncated log mass >= L.
  for (const int j : jobs) {
    EXPECT_GE(x.delivered_mass(inst, j, L), L - 1e-7) << "job " << j;
  }
  // Lemma 2 part 2: machine loads <= ceil(6 t*) (+ the documented top-up
  // slack, which is tiny; assert 7 t* + 2 to be safe).
  for (int i = 0; i < m; ++i) {
    EXPECT_LE(static_cast<double>(x.load(i)), 7.0 * frac.t + 2.0)
        << "machine " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma2Rounding,
    ::testing::Combine(::testing::Values(3, 8, 16), ::testing::Values(2, 5),
                       ::testing::Values(0.5, 1.0, 4.0),
                       ::testing::Values(0, 1, 2)));

TEST(Lemma2Rounding, FrankWolfeSolverPathAlsoSound) {
  util::Rng rng(99);
  core::Instance inst = core::make_independent(
      24, 6, core::MachineModel::uniform(0.3, 0.9), rng);
  const auto jobs = all_jobs(inst);
  Lp1Options opt;
  opt.solver = Lp1Options::Solver::FrankWolfe;
  const Lp1Fractional frac = solve_lp1(inst, jobs, 0.5, opt);
  EXPECT_GT(frac.lower_bound, 0.0);
  EXPECT_GE(frac.t, frac.lower_bound - 1e-9);
  const sched::IntegralAssignment x = round_lp1(inst, jobs, 0.5, frac);
  for (const int j : jobs) {
    EXPECT_GE(x.delivered_mass(inst, j, 0.5), 0.5 - 1e-7);
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_LE(static_cast<double>(x.load(i)), 7.0 * frac.t + 2.0);
  }
}

TEST(Lp1Schedule, BuildsNonEmptyScheduleCoveringJobs) {
  util::Rng rng(17);
  core::Instance inst = core::make_independent(
      6, 3, core::MachineModel::uniform(0.4, 0.9), rng);
  const Lp1Schedule s = build_lp1_schedule(inst, all_jobs(inst), 0.5);
  EXPECT_GT(s.schedule.length(), 0);
  EXPECT_EQ(s.schedule.length(), s.assignment.max_load());
  EXPECT_GT(s.t_fractional, 0.0);
}

TEST(Lp1, SubsetOfJobsOnly) {
  util::Rng rng(21);
  core::Instance inst = core::make_independent(
      8, 3, core::MachineModel::uniform(0.4, 0.9), rng);
  const std::vector<int> subset = {1, 4, 6};
  const Lp1Fractional f = solve_lp1(inst, subset, 2.0);
  const sched::IntegralAssignment x = round_lp1(inst, subset, 2.0, f);
  for (const int j : subset) {
    EXPECT_GE(x.delivered_mass(inst, j, 2.0), 2.0 - 1e-7);
  }
  // Untouched jobs get nothing.
  EXPECT_TRUE(x.steps_for(0).empty());
  EXPECT_TRUE(x.steps_for(7).empty());
}

// ---- LP2 / Lemma 6 ----

TEST(Lp2, SingleChainSingleMachine) {
  // Chain of 2 jobs, one machine with q = 0.5 (ell = 1): x = 1 step each,
  // d_j = 1, t* = 2 (load and chain length agree).
  core::Instance inst(2, 1, {0.5, 0.5}, core::make_chain_dag({2}));
  const Lp2Result r = solve_and_round_lp2(inst, inst.dag().chains());
  EXPECT_NEAR(r.t_fractional, 2.0, 1e-6);
  EXPECT_GE(r.assignment.delivered_mass(inst, 0, 1.0), 1.0 - 1e-9);
  EXPECT_GE(r.assignment.delivered_mass(inst, 1, 1.0), 1.0 - 1e-9);
  EXPECT_EQ(r.d[0], 1);
  EXPECT_EQ(r.d[1], 1);
}

class Lemma6Rounding : public ::testing::TestWithParam<int> {};

TEST_P(Lemma6Rounding, GuaranteesHold) {
  util::Rng rng(3000 + GetParam());
  core::Instance inst = core::make_chains(
      3 + GetParam() % 3, 1, 5, 3, core::MachineModel::uniform(0.25, 0.95),
      rng);
  const auto chains = inst.dag().chains();
  const Lp2Result r = solve_and_round_lp2(inst, chains);

  // Unit mass per job.
  for (int j = 0; j < inst.num_jobs(); ++j) {
    EXPECT_GE(r.assignment.delivered_mass(inst, j, 1.0), 1.0 - 1e-7)
        << "job " << j;
  }
  // Loads O(t*).
  for (int i = 0; i < inst.num_machines(); ++i) {
    EXPECT_LE(static_cast<double>(r.assignment.load(i)),
              7.0 * r.t_fractional + 2.0);
  }
  // Chain lengths O(t*): paper gives <= 7 sum d*_j <= 7 t* (+|Ck| slack).
  for (const auto& chain : chains) {
    std::int64_t len = 0;
    for (const int j : chain) len += r.d[j];
    EXPECT_LE(static_cast<double>(len),
              7.0 * r.t_fractional + static_cast<double>(chain.size()) + 2.0);
  }
  // d_j = max_i x_ij and >= 1.
  for (int j = 0; j < inst.num_jobs(); ++j) {
    EXPECT_GE(r.d[j], 1);
    EXPECT_GE(r.d[j], r.assignment.job_length(j));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma6Rounding, ::testing::Range(0, 8));

TEST(Lp2, RejectsOverlappingChains) {
  core::Instance inst = core::Instance::independent(3, 1, {0.5, 0.5, 0.5});
  EXPECT_THROW(solve_and_round_lp2(inst, {{0, 1}, {1, 2}}), util::CheckError);
  EXPECT_THROW(solve_and_round_lp2(inst, {{}}), util::CheckError);
  EXPECT_THROW(solve_and_round_lp2(inst, {}), util::CheckError);
}

TEST(Lp2, LowerBoundConsistentWithLp1) {
  // LP2 includes LP1's constraints (with L = 1), so t_LP2 >= t_LP1(J, 1).
  util::Rng rng(55);
  core::Instance inst = core::make_chains(
      3, 2, 4, 3, core::MachineModel::uniform(0.3, 0.9), rng);
  const Lp2Result r2 = solve_and_round_lp2(inst, inst.dag().chains());
  std::vector<int> jobs(static_cast<std::size_t>(inst.num_jobs()));
  for (int j = 0; j < inst.num_jobs(); ++j) {
    jobs[static_cast<std::size_t>(j)] = j;
  }
  const Lp1Fractional f1 = solve_lp1(inst, jobs, 1.0);
  EXPECT_GE(r2.t_fractional, f1.t - 1e-6);
}

}  // namespace
}  // namespace suu::rounding
