#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace suu::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedWorks) {
  Rng r(0);
  EXPECT_NE(r.next(), 0u);  // overwhelmingly likely and deterministic
}

TEST(Rng, Uniform01InRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01OpenNeverZero) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(r.uniform01_open(), 0.0);
  }
}

TEST(Rng, Uniform01MeanAndVariance) {
  Rng r(11);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform01();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformBelowBounds) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniform_below(17), 17u);
  }
}

TEST(Rng, UniformBelowCoversAllValues) {
  Rng r(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformBelowUnbiased) {
  // Chi-square-ish sanity: each residue of 10 should get ~10%.
  Rng r(5);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, BernoulliEdges) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliMean) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialPositive) {
  Rng r(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(r.exponential(0.1), 0.0);
}

TEST(Rng, ChildStreamsIndependent) {
  Rng parent(21);
  Rng c0 = parent.child(0);
  Rng c1 = parent.child(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c0.next() == c1.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ChildDeterministic) {
  Rng p1(21), p2(21);
  Rng a = p1.child(5);
  Rng b = p2.child(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ChildDoesNotPerturbParent) {
  Rng p1(33), p2(33);
  (void)p1.child(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p1.next(), p2.next());
}

TEST(Rng, ChildrenOfDistinctParentsDiffer) {
  Rng a = Rng(1).child(0);
  Rng b = Rng(2).child(0);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng r(1);
  EXPECT_GE(r(), Rng::min());
}

}  // namespace
}  // namespace suu::util
