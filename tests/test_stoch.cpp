#include <gtest/gtest.h>

#include <cmath>

#include "stoch/bvn.hpp"
#include "stoch/instance.hpp"
#include "stoch/lawler_labetoulle.hpp"
#include "stoch/stc_i.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace suu::stoch {
namespace {

StochInstance random_instance(util::Rng& rng, int n, int m) {
  std::vector<double> lambda(static_cast<std::size_t>(n));
  std::vector<double> v(static_cast<std::size_t>(n) * m);
  for (auto& l : lambda) l = 0.5 + rng.uniform01() * 2.0;
  for (auto& s : v) s = rng.bernoulli(0.8) ? 0.2 + rng.uniform01() : 0.0;
  // Guarantee a positive speed per job.
  for (int j = 0; j < n; ++j) {
    bool any = false;
    for (int i = 0; i < m; ++i) {
      if (v[static_cast<std::size_t>(j) * m + i] > 0) any = true;
    }
    if (!any) v[static_cast<std::size_t>(j) * m] = 1.0;
  }
  return StochInstance(n, m, std::move(lambda), std::move(v));
}

TEST(StochInstance, Validation) {
  EXPECT_THROW(StochInstance(1, 1, {0.0}, {1.0}), util::CheckError);
  EXPECT_THROW(StochInstance(1, 1, {1.0}, {0.0}), util::CheckError);
  EXPECT_THROW(StochInstance(1, 1, {1.0}, {-1.0}), util::CheckError);
  const StochInstance ok(1, 2, {1.0}, {0.0, 2.0});
  EXPECT_EQ(ok.fastest_machine(0), 1);
  EXPECT_DOUBLE_EQ(ok.max_speed(0), 2.0);
}

TEST(Bvn, IdentityMatrix) {
  // 2 machines, 2 jobs, x = diag(3, 3), C = 3: a single slice suffices.
  const std::vector<double> x = {3.0, 0.0, 0.0, 3.0};
  const auto slices = decompose_preemptive(2, 2, x, 3.0);
  double total = 0;
  for (const auto& s : slices) total += s.duration;
  EXPECT_NEAR(total, 3.0, 1e-9);
}

TEST(Bvn, ZeroHorizon) {
  EXPECT_TRUE(decompose_preemptive(1, 1, {0.0}, 0.0).empty());
}

TEST(Bvn, RejectsOverloadedRows) {
  EXPECT_THROW(decompose_preemptive(1, 2, {2.0, 2.0}, 3.0),
               util::CheckError);
}

void check_decomposition_properties(int m, int n,
                                    const std::vector<double>& x, double C) {
  const auto slices = decompose_preemptive(m, n, x, C);
  // 1. Total duration C; 2. no job on two machines in a slice (by
  // construction of job_of_machine we check duplicates); 3. delivered time
  // per (i, j) == x exactly.
  std::vector<double> delivered(static_cast<std::size_t>(m) *
                                    static_cast<std::size_t>(n),
                                0.0);
  double total = 0;
  for (const auto& s : slices) {
    EXPECT_GT(s.duration, 0.0);
    total += s.duration;
    std::vector<char> used(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < m; ++i) {
      const int j = s.job_of_machine[static_cast<std::size_t>(i)];
      if (j < 0) continue;
      EXPECT_FALSE(used[static_cast<std::size_t>(j)])
          << "job " << j << " on two machines";
      used[static_cast<std::size_t>(j)] = 1;
      delivered[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(j)] += s.duration;
    }
  }
  EXPECT_NEAR(total, C, 1e-6 * (1 + C));
  for (std::size_t k = 0; k < delivered.size(); ++k) {
    EXPECT_NEAR(delivered[k], x[k], 1e-6 * (1 + C)) << "entry " << k;
  }
}

class BvnRandom : public ::testing::TestWithParam<int> {};

TEST_P(BvnRandom, ExactRealization) {
  util::Rng rng(4000 + GetParam());
  const int m = 1 + static_cast<int>(rng.uniform_below(4));
  const int n = 1 + static_cast<int>(rng.uniform_below(5));
  std::vector<double> x(static_cast<std::size_t>(m) *
                            static_cast<std::size_t>(n),
                        0.0);
  for (auto& v : x) v = rng.bernoulli(0.7) ? rng.uniform01() * 3 : 0.0;
  double C = 0;
  for (int i = 0; i < m; ++i) {
    double r = 0;
    for (int j = 0; j < n; ++j) {
      r += x[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(j)];
    }
    C = std::max(C, r);
  }
  for (int j = 0; j < n; ++j) {
    double c = 0;
    for (int i = 0; i < m; ++i) {
      c += x[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(j)];
    }
    C = std::max(C, c);
  }
  C += 0.1;  // strict slack
  check_decomposition_properties(m, n, x, C);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BvnRandom, ::testing::Range(0, 15));

TEST(LawlerLabetoulle, SingleJobClosedForm) {
  // p = 6, speeds {2, 3}: no-parallelism makes C* = p / vmax = 2.
  const StochInstance inst(1, 2, {1.0}, {2.0, 3.0});
  const PreemptiveSchedule s = solve_rpmtn(inst, {0}, {6.0});
  EXPECT_NEAR(s.makespan, 2.0, 1e-6);
}

TEST(LawlerLabetoulle, TwoJobsShareTwoMachines) {
  // Symmetric: 2 jobs, 2 unit-speed machines, p = 4 each: C* = 4.
  const StochInstance inst(2, 2, {1.0, 1.0}, {1.0, 1.0, 1.0, 1.0});
  const PreemptiveSchedule s = solve_rpmtn(inst, {0, 1}, {4.0, 4.0});
  EXPECT_NEAR(s.makespan, 4.0, 1e-6);
}

TEST(LawlerLabetoulle, PreemptionBeatsNonpreemptive) {
  // Jobs prefer different machines; LP splits work across machines.
  const StochInstance inst(2, 2, {1.0, 1.0}, {2.0, 1.0, 2.0, 1.0});
  // Both jobs fast on machine 0. p = 4 each. Nonpreemptive on machine 0:
  // 4; LL can use machine 1 in parallel: C < 4.
  const PreemptiveSchedule s = solve_rpmtn(inst, {0, 1}, {4.0, 4.0});
  EXPECT_LT(s.makespan, 4.0 - 0.1);
  EXPECT_GE(s.makespan, 2.0 - 1e-6);  // total work 8, total speed <= 4...
}

TEST(LawlerLabetoulle, SlicesRealizeWork) {
  util::Rng rng(31);
  const StochInstance inst = random_instance(rng, 4, 3);
  std::vector<double> p = {1.0, 2.0, 0.5, 1.5};
  const PreemptiveSchedule s = solve_rpmtn(inst, {0, 1, 2, 3}, p);
  // Work delivered per job must reach p_j.
  std::vector<double> work(4, 0.0);
  for (const auto& slice : s.slices) {
    for (int i = 0; i < 3; ++i) {
      const int idx = slice.job_of_machine[static_cast<std::size_t>(i)];
      if (idx >= 0) {
        work[static_cast<std::size_t>(idx)] +=
            slice.duration * inst.speed(i, idx >= 0 ? idx : 0);
      }
    }
  }
  for (int j = 0; j < 4; ++j) {
    EXPECT_GE(work[static_cast<std::size_t>(j)],
              p[static_cast<std::size_t>(j)] - 1e-5)
        << "job " << j;
  }
}

TEST(StcRoundBound, Values) {
  EXPECT_EQ(stc_round_bound(2), 3);
  EXPECT_EQ(stc_round_bound(4), 4);
  EXPECT_EQ(stc_round_bound(16), 5);
  EXPECT_EQ(stc_round_bound(1), 3);
}

TEST(StcI, SingleJobBasicallyOptimal) {
  // One job: STC-I should track the offline optimum within its constant.
  const StochInstance inst(1, 2, {1.0}, {1.0, 2.0});
  const StochEstimate est = estimate_stoch(inst, 2000, 77);
  EXPECT_GT(est.offline.mean, 0.0);
  EXPECT_LT(est.stc_i.mean / est.offline.mean, 4.0);
}

TEST(StcI, CompletesAndBeatsSequentialAtScale) {
  util::Rng rng(41);
  const StochInstance inst = random_instance(rng, 10, 4);
  const StochEstimate est = estimate_stoch(inst, 300, 43);
  EXPECT_GT(est.stc_i.mean, 0.0);
  // With 4 machines, parallelizing should beat the sequential baseline.
  EXPECT_LT(est.stc_i.mean, est.sequential.mean);
  // Offline optimum is a valid lower bound.
  EXPECT_LE(est.offline.mean, est.stc_i.mean + 1e-9);
  EXPECT_LE(est.mean_rounds, stc_round_bound(10));
}

TEST(StcI, RatioBoundedOnRandomFamilies) {
  util::Rng rng(47);
  for (int trial = 0; trial < 3; ++trial) {
    const StochInstance inst = random_instance(rng, 6, 3);
    const StochEstimate est = estimate_stoch(inst, 300, 100 + trial);
    const double ratio = est.stc_i.mean / est.offline.mean;
    EXPECT_LT(ratio, 6.0) << "trial " << trial;
    EXPECT_GE(ratio, 1.0 - 0.05);
  }
}

TEST(StcI, DeterministicPerSeed) {
  util::Rng rng(53);
  const StochInstance inst = random_instance(rng, 5, 2);
  const StochEstimate a = estimate_stoch(inst, 50, 9, 1);
  const StochEstimate b = estimate_stoch(inst, 50, 9, 4);
  EXPECT_DOUBLE_EQ(a.stc_i.mean, b.stc_i.mean);
  EXPECT_DOUBLE_EQ(a.offline.mean, b.offline.mean);
}

TEST(StcI, TailFractionSmall) {
  util::Rng rng(59);
  const StochInstance inst = random_instance(rng, 8, 3);
  const StochEstimate est = estimate_stoch(inst, 400, 13);
  // Theorem 13: survivors past round K occur with probability <= 1/n.
  EXPECT_LE(est.tail_fraction, 0.35);
}

}  // namespace
}  // namespace suu::stoch
