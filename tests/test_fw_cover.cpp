#include "lp/fw_cover.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace suu::lp {
namespace {

double exact_opt(const CoverSystem& sys) {
  Problem p;
  const int t = p.add_var(1.0);
  std::vector<Row> loads(sys.n_machines);
  for (std::size_t j = 0; j < sys.cover.size(); ++j) {
    Row cover;
    cover.rel = Rel::Ge;
    cover.rhs = sys.demand[j];
    for (const auto& [i, a] : sys.cover[j]) {
      const int v = p.add_var(0.0);
      cover.terms.emplace_back(v, a);
      loads[i].terms.emplace_back(v, 1.0);
    }
    p.add_row(std::move(cover));
  }
  for (int i = 0; i < sys.n_machines; ++i) {
    if (loads[i].terms.empty()) continue;
    loads[i].terms.emplace_back(t, -1.0);
    loads[i].rel = Rel::Le;
    loads[i].rhs = 0.0;
    p.add_row(std::move(loads[i]));
  }
  const Solution s = solve_simplex(p);
  SUU_CHECK(s.status == Status::Optimal);
  return s.objective;
}

CoverSystem random_system(util::Rng& rng, int n_jobs, int n_machines) {
  CoverSystem sys;
  sys.n_machines = n_machines;
  sys.cover.resize(static_cast<std::size_t>(n_jobs));
  sys.demand.resize(static_cast<std::size_t>(n_jobs));
  for (int j = 0; j < n_jobs; ++j) {
    sys.demand[static_cast<std::size_t>(j)] = 0.5 + rng.uniform01();
    for (int i = 0; i < n_machines; ++i) {
      if (rng.bernoulli(0.7)) {
        sys.cover[static_cast<std::size_t>(j)].emplace_back(
            i, 0.05 + rng.uniform01());
      }
    }
    if (sys.cover[static_cast<std::size_t>(j)].empty()) {
      sys.cover[static_cast<std::size_t>(j)].emplace_back(0, 0.5);
    }
  }
  return sys;
}

TEST(FwCover, SingleJobSingleMachineClosedForm) {
  CoverSystem sys;
  sys.n_machines = 1;
  sys.cover = {{{0, 0.25}}};
  sys.demand = {1.0};
  const FwSolution s = solve_fw_cover(sys);
  EXPECT_NEAR(s.t, 4.0, 1e-6);  // must put 4 units on the only machine
  EXPECT_NEAR(s.lower_bound, 4.0, 0.2);
}

TEST(FwCover, DemandAlwaysMetExactly) {
  util::Rng rng(5);
  const CoverSystem sys = random_system(rng, 20, 6);
  const FwSolution s = solve_fw_cover(sys);
  for (std::size_t j = 0; j < sys.cover.size(); ++j) {
    double got = 0;
    for (std::size_t k = 0; k < sys.cover[j].size(); ++k) {
      EXPECT_GE(s.x[j][k], -1e-12);
      got += s.x[j][k] * sys.cover[j][k].second;
    }
    EXPECT_NEAR(got, sys.demand[j], 1e-6 * (1 + sys.demand[j]));
  }
}

TEST(FwCover, LowerBoundIsValid) {
  util::Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    const CoverSystem sys = random_system(rng, 12, 4);
    const FwSolution s = solve_fw_cover(sys);
    const double opt = exact_opt(sys);
    EXPECT_LE(s.lower_bound, opt + 1e-6) << "LB must not exceed the optimum";
    EXPECT_GE(s.t, opt - 1e-6) << "achieved value cannot beat the optimum";
  }
}

TEST(FwCover, IdenticalMachinesBalance) {
  // 8 jobs, 4 identical machines, coeff 1, demand 1: optimum 2.
  CoverSystem sys;
  sys.n_machines = 4;
  for (int j = 0; j < 8; ++j) {
    sys.cover.push_back({{0, 1.0}, {1, 1.0}, {2, 1.0}, {3, 1.0}});
    sys.demand.push_back(1.0);
  }
  const FwSolution s = solve_fw_cover(sys);
  EXPECT_NEAR(s.t, 2.0, 0.15);
}

TEST(FwCover, EmptySystem) {
  CoverSystem sys;
  sys.n_machines = 2;
  const FwSolution s = solve_fw_cover(sys);
  EXPECT_EQ(s.t, 0.0);
}

TEST(FwCover, JobWithoutMachineThrows) {
  CoverSystem sys;
  sys.n_machines = 1;
  sys.cover = {{}};
  sys.demand = {1.0};
  EXPECT_THROW(solve_fw_cover(sys), util::CheckError);
}

class FwVsSimplex : public ::testing::TestWithParam<int> {};

TEST_P(FwVsSimplex, WithinConstantFactorOfOptimum) {
  util::Rng rng(100 + GetParam());
  const int n_jobs = 2 + static_cast<int>(rng.uniform_below(20));
  const int n_machines = 1 + static_cast<int>(rng.uniform_below(6));
  const CoverSystem sys = random_system(rng, n_jobs, n_machines);
  const FwSolution s = solve_fw_cover(sys);
  const double opt = exact_opt(sys);
  ASSERT_GT(opt, 0);
  // Lemma 2 only needs an O(1)-approximate fractional point; the solver is
  // configured for a 2% duality gap but we assert a loose 1.35.
  EXPECT_LE(s.t / opt, 1.35) << "FW too far from optimum";
  EXPECT_GE(s.lower_bound / opt, 0.6) << "certificate too weak";
}

INSTANTIATE_TEST_SUITE_P(Sweep, FwVsSimplex, ::testing::Range(0, 15));

}  // namespace
}  // namespace suu::lp
