// Differential oracle for the simplex engines (labelled `differential` in
// ctest): property-based random LP generation — LP1/LP2-shaped programs,
// fully random mixed-relation programs, degenerate and near-singular
// constructions — solved by BOTH the tableau and the revised engine, with
// matching verdicts required and every claimed optimum re-checked against
// the constraints directly. This suite is the merge gate for any future
// solver rewrite: a numerically different core that silently changes a
// verdict or an optimum fails here before it can corrupt an experiment.
//
// SUU_DIFFERENTIAL_INSTANCES scales the sweep (default 500; the nightly CI
// job runs tens of thousands).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lp/basis.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace suu::lp {
namespace {

int instance_budget() {
  const char* env = std::getenv("SUU_DIFFERENTIAL_INSTANCES");
  if (env == nullptr || *env == '\0') return 500;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env) return 500;
  return static_cast<int>(std::clamp(v, 10L, 10'000'000L));
}

Row row(std::vector<std::pair<int, double>> terms, Rel rel, double rhs) {
  Row r;
  r.terms = std::move(terms);
  r.rel = rel;
  r.rhs = rhs;
  return r;
}

// LP1-shaped: min t, per-job covering rows, per-machine load rows. Always
// feasible and bounded; moderately degenerate at the optimum.
Problem gen_lp1_shaped(util::Rng& rng) {
  const int n_jobs = 1 + static_cast<int>(rng.uniform_below(6));
  const int n_machines = 1 + static_cast<int>(rng.uniform_below(4));
  Problem p;
  const int t = p.add_var(1.0);
  std::vector<Row> loads(static_cast<std::size_t>(n_machines));
  for (int j = 0; j < n_jobs; ++j) {
    Row cover;
    cover.rel = Rel::Ge;
    cover.rhs = 1.0;
    for (int i = 0; i < n_machines; ++i) {
      if (n_machines > 1 && rng.bernoulli(0.2)) continue;  // incapable pair
      const int v = p.add_var(0.0);
      cover.terms.emplace_back(v, 0.05 + rng.uniform01());
      loads[static_cast<std::size_t>(i)].terms.emplace_back(v, 1.0);
    }
    if (cover.terms.empty()) {
      const int v = p.add_var(0.0);
      cover.terms.emplace_back(v, 0.5);
      loads[0].terms.emplace_back(v, 1.0);
    }
    p.add_row(std::move(cover));
  }
  for (int i = 0; i < n_machines; ++i) {
    Row& load = loads[static_cast<std::size_t>(i)];
    if (load.terms.empty()) continue;
    load.terms.emplace_back(t, -1.0);
    load.rel = Rel::Le;
    load.rhs = 0.0;
    p.add_row(std::move(load));
  }
  return p;
}

// LP2-shaped: adds per-job length variables d_j with x_ij <= d_j, d_j >= 1
// and chain-length rows — the block-chaining workload SUU-T warm starts.
Problem gen_lp2_shaped(util::Rng& rng) {
  const int n_jobs = 2 + static_cast<int>(rng.uniform_below(5));
  const int n_machines = 1 + static_cast<int>(rng.uniform_below(3));
  const int n_chains = 1 + static_cast<int>(rng.uniform_below(3));
  Problem p;
  const int t = p.add_var(1.0);
  std::vector<int> d(static_cast<std::size_t>(n_jobs));
  for (int j = 0; j < n_jobs; ++j) d[static_cast<std::size_t>(j)] = p.add_var(0.0);
  std::vector<Row> loads(static_cast<std::size_t>(n_machines));
  for (int j = 0; j < n_jobs; ++j) {
    Row cover;
    cover.rel = Rel::Ge;
    cover.rhs = 1.0;
    for (int i = 0; i < n_machines; ++i) {
      if (n_machines > 1 && rng.bernoulli(0.25)) continue;
      const int v = p.add_var(0.0);
      cover.terms.emplace_back(v, 0.05 + 0.95 * rng.uniform01());
      loads[static_cast<std::size_t>(i)].terms.emplace_back(v, 1.0);
      p.add_row(row({{v, 1.0}, {d[static_cast<std::size_t>(j)], -1.0}},
                    Rel::Le, 0.0));
    }
    if (cover.terms.empty()) {
      const int v = p.add_var(0.0);
      cover.terms.emplace_back(v, 0.5);
      loads[0].terms.emplace_back(v, 1.0);
      p.add_row(row({{v, 1.0}, {d[static_cast<std::size_t>(j)], -1.0}},
                    Rel::Le, 0.0));
    }
    p.add_row(std::move(cover));
    p.add_row(row({{d[static_cast<std::size_t>(j)], 1.0}}, Rel::Ge, 1.0));
  }
  for (int i = 0; i < n_machines; ++i) {
    Row& load = loads[static_cast<std::size_t>(i)];
    if (load.terms.empty()) continue;
    load.terms.emplace_back(t, -1.0);
    load.rel = Rel::Le;
    load.rhs = 0.0;
    p.add_row(std::move(load));
  }
  for (int c = 0; c < n_chains; ++c) {
    Row len;
    len.rel = Rel::Le;
    len.rhs = 0.0;
    for (int j = c; j < n_jobs; j += n_chains) {
      len.terms.emplace_back(d[static_cast<std::size_t>(j)], 1.0);
    }
    len.terms.emplace_back(t, -1.0);
    p.add_row(std::move(len));
  }
  return p;
}

// Fully random mixed-relation programs: signs, relations and right-hand
// sides unconstrained, so infeasible and unbounded verdicts are exercised
// too — the engines must agree on those as well.
Problem gen_random(util::Rng& rng) {
  const int nv = 1 + static_cast<int>(rng.uniform_below(8));
  Problem p;
  for (int v = 0; v < nv; ++v) p.add_var(2.0 * rng.uniform01() - 1.0);
  const int nr = 1 + static_cast<int>(rng.uniform_below(10));
  for (int r = 0; r < nr; ++r) {
    Row rr;
    const int terms = 1 + static_cast<int>(rng.uniform_below(
                              static_cast<std::uint64_t>(nv)));
    for (int k = 0; k < terms; ++k) {
      rr.terms.emplace_back(static_cast<int>(rng.uniform_below(
                                static_cast<std::uint64_t>(nv))),
                            4.0 * rng.uniform01() - 2.0);
    }
    const auto pick = rng.uniform_below(3);
    rr.rel = pick == 0 ? Rel::Le : (pick == 1 ? Rel::Ge : Rel::Eq);
    rr.rhs = 6.0 * rng.uniform01() - 3.0;
    p.add_row(std::move(rr));
  }
  return p;
}

// Degenerate: a feasible covering LP buried under duplicated rows, scaled
// copies and zero right-hand sides — many ties in every ratio test.
Problem gen_degenerate(util::Rng& rng) {
  Problem p = gen_lp1_shaped(rng);
  const std::size_t base_rows = p.rows.size();
  for (std::size_t r = 0; r < base_rows; ++r) {
    if (rng.bernoulli(0.5)) p.add_row(p.rows[r]);  // verbatim duplicate
    if (rng.bernoulli(0.3)) {
      Row scaled = p.rows[r];
      for (auto& [v, c] : scaled.terms) c *= 2.0;
      scaled.rhs *= 2.0;
      p.add_row(std::move(scaled));
    }
  }
  if (!p.rows.empty() && rng.bernoulli(0.5)) {
    // Redundant equality pair through the first variable.
    p.add_row(row({{0, 1.0}, {0, -1.0}}, Rel::Eq, 0.0));
  }
  return p;
}

// Near-singular: columns that are tiny relative perturbations of each
// other, so factorization pivots live close to the rejection threshold.
Problem gen_near_singular(util::Rng& rng) {
  const int nv = 2 + static_cast<int>(rng.uniform_below(3));
  Problem p;
  for (int v = 0; v < nv; ++v) p.add_var(-0.5 - rng.uniform01());
  const int nr = 2 + static_cast<int>(rng.uniform_below(3));
  std::vector<double> base(static_cast<std::size_t>(nr));
  for (double& b : base) b = 0.5 + rng.uniform01();
  for (int r = 0; r < nr; ++r) {
    Row rr;
    rr.rel = Rel::Le;
    rr.rhs = 1.0 + 2.0 * rng.uniform01();
    for (int v = 0; v < nv; ++v) {
      const double wobble = 1.0 + 1e-8 * static_cast<double>(v) +
                            1e-9 * rng.uniform01();
      rr.terms.emplace_back(v, base[static_cast<std::size_t>(r)] * wobble);
    }
    p.add_row(std::move(rr));
  }
  // Keep the region bounded so the near-parallel columns must actually be
  // priced against each other.
  Row cap;
  cap.rel = Rel::Le;
  cap.rhs = 10.0;
  for (int v = 0; v < nv; ++v) cap.terms.emplace_back(v, 1.0);
  p.add_row(std::move(cap));
  return p;
}

struct Generated {
  Problem p;
  const char* family;
};

Generated generate(util::Rng& rng, int which) {
  switch (which % 5) {
    case 0:
      return {gen_lp1_shaped(rng), "lp1"};
    case 1:
      return {gen_lp2_shaped(rng), "lp2"};
    case 2:
      return {gen_random(rng), "random"};
    case 3:
      return {gen_degenerate(rng), "degenerate"};
    default:
      return {gen_near_singular(rng), "near-singular"};
  }
}

double problem_scale(const Problem& p) {
  double scale = 1.0;
  for (const auto& r : p.rows) scale = std::max(scale, std::fabs(r.rhs));
  return scale;
}

TEST(LpDifferential, EnginesAgreeAcrossGeneratedInstances) {
  const int total = instance_budget();
  // Full cross of engine x pricing rule; the tableau under Dantzig (the
  // historical, byte-recorded configuration) is the reference every other
  // cell must match. Pricing changes the pivot path, never the verdict or
  // the optimum — this is the oracle that enforces it.
  struct Cell {
    SimplexEngine engine;
    PricingRule rule;
  };
  const Cell cells[] = {
      {SimplexEngine::Tableau, PricingRule::Dantzig},
      {SimplexEngine::Tableau, PricingRule::Devex},
      {SimplexEngine::Tableau, PricingRule::Steepest},
      {SimplexEngine::Revised, PricingRule::Dantzig},
      {SimplexEngine::Revised, PricingRule::Devex},
      {SimplexEngine::Revised, PricingRule::Steepest},
  };
  int optimal = 0;
  int infeasible = 0;
  int unbounded = 0;
  int fallbacks = 0;
  int tame_fallbacks = 0;
  for (int i = 0; i < total; ++i) {
    util::Rng rng(0x5EED0000ULL + static_cast<std::uint64_t>(i));
    const Generated g = generate(rng, i);
    const std::string ctx =
        std::string("family=") + g.family + " i=" + std::to_string(i);

    SimplexOptions ref_opt;
    ref_opt.engine = cells[0].engine;
    ref_opt.pricing = cells[0].rule;
    const Solution st = solve_simplex(g.p, ref_opt);
    const double feas_tol = 1e-6 * problem_scale(g.p);
    for (std::size_t c = 1; c < std::size(cells); ++c) {
      SimplexOptions opt;
      opt.engine = cells[c].engine;
      opt.pricing = cells[c].rule;
      const Solution sr = solve_simplex(g.p, opt);
      const std::string cctx = ctx + " engine=" + to_string(cells[c].engine) +
                               " pricing=" + to_string(cells[c].rule);
      // A Revised request that silently fell back re-solved with the
      // tableau, which would make the engine comparison vacuous — tolerated
      // only on the families built to provoke it, and bounded overall
      // below.
      if (cells[c].engine == SimplexEngine::Revised &&
          sr.engine != SimplexEngine::Revised) {
        ++fallbacks;
        if (std::string(g.family) != "near-singular" &&
            std::string(g.family) != "degenerate") {
          // The non-Dantzig rules walk different (occasionally worse
          // conditioned) bases, so at 20k+ scale a handful of tame-family
          // instances legitimately trip the safety net too. Rare is the
          // invariant — the tight bound below — not never.
          ++tame_fallbacks;
        }
      }
      ASSERT_EQ(st.status, sr.status)
          << cctx << " reference=" << to_string(st.status)
          << " got=" << to_string(sr.status);
      if (st.status != Status::Optimal) continue;
      // Equal objectives (the oracle condition) and directly verified
      // primal feasibility — never trust an engine's own verify.
      const double obj_tol = 1e-9 * (1.0 + std::fabs(st.objective));
      EXPECT_NEAR(st.objective, sr.objective, obj_tol) << cctx;
      EXPECT_LE(max_violation(g.p, sr.x), feas_tol) << cctx;
    }
    switch (st.status) {
      case Status::Optimal:
        ++optimal;
        break;
      case Status::Infeasible:
        ++infeasible;
        break;
      case Status::Unbounded:
        ++unbounded;
        break;
      case Status::IterLimit:
        break;
    }
    if (st.status != Status::Optimal) continue;
    EXPECT_LE(max_violation(g.p, st.x), feas_tol) << ctx;
  }
  // The sweep must genuinely exercise every verdict — and the revised
  // engine must genuinely be the one answering — or the generator has
  // rotted and the oracle is vacuous.
  EXPECT_GT(optimal, total / 4);
  EXPECT_GT(infeasible, 0);
  EXPECT_GT(unbounded, 0);
  // Three revised cells run per instance, so normalize against that.
  EXPECT_LE(fallbacks * 10, 3 * total)
      << "more than 10% of Revised requests fell back to the tableau";
  // Outside the families built to provoke trouble, fallbacks must stay
  // genuinely exceptional: at most 0.05% of revised solves (and never more
  // than a handful at the default 500-instance budget).
  EXPECT_LE(tame_fallbacks * 2000, std::max(3 * total, 2000))
      << tame_fallbacks << " tame-family tableau fallbacks in " << 3 * total
      << " revised solves";
  std::cout << "[differential] " << total << " instances: " << optimal
            << " optimal, " << infeasible << " infeasible, " << unbounded
            << " unbounded, " << fallbacks << " tableau fallbacks ("
            << tame_fallbacks << " on tame families)\n";
}

TEST(LpDifferential, WarmStartedResolvesMatchColdAcrossEngines) {
  // Chained warm starts (the LP2 block pattern, now default-on in suu::api)
  // must not change any optimum, whichever engine recorded the seed and
  // whichever engine consumes it.
  const int total = std::max(20, instance_budget() / 10);
  for (int i = 0; i < total; ++i) {
    util::Rng rng(0xCAFE0000ULL + static_cast<std::uint64_t>(i));
    const Generated g = generate(rng, i % 2);  // lp1/lp2 families
    const std::string ctx =
        std::string("family=") + g.family + " i=" + std::to_string(i);

    const Solution cold = solve_simplex(g.p);
    ASSERT_EQ(cold.status, Status::Optimal) << ctx;

    WarmStart warm;
    warm.basis = cold.basis;
    for (const SimplexEngine engine :
         {SimplexEngine::Tableau, SimplexEngine::Revised}) {
      SimplexOptions opt;
      opt.engine = engine;
      opt.warm = &warm;
      const Solution hot = solve_simplex(g.p, opt);
      ASSERT_EQ(hot.status, Status::Optimal) << ctx;
      EXPECT_NEAR(hot.objective, cold.objective,
                  1e-9 * (1.0 + std::fabs(cold.objective)))
          << ctx << " engine=" << to_string(engine);
      EXPECT_EQ(hot.phase1_iterations, 0)
          << ctx << " engine=" << to_string(engine)
          << " (accepted seed must skip phase 1)";
      warm.basis = cold.basis;  // reseed identically for the next engine
    }
  }
}

// Deterministic n=1024 LP1-shaped instance mirroring the BM_RevisedLp1
// bench family (1024 jobs over 8 machines). Large enough that phase 1
// dominates and the pricing rules genuinely diverge in path length.
Problem gen_lp1_large(std::uint64_t seed, int n_jobs, int n_machines) {
  util::Rng rng(seed);
  Problem p;
  const int t = p.add_var(1.0);
  std::vector<Row> loads(static_cast<std::size_t>(n_machines));
  for (int j = 0; j < n_jobs; ++j) {
    Row cover;
    cover.rel = Rel::Ge;
    cover.rhs = 1.0;
    for (int i = 0; i < n_machines; ++i) {
      if (rng.bernoulli(0.2)) continue;  // incapable pair
      const int v = p.add_var(0.0);
      cover.terms.emplace_back(v, 0.05 + rng.uniform01());
      loads[static_cast<std::size_t>(i)].terms.emplace_back(v, 1.0);
    }
    if (cover.terms.empty()) {
      const int v = p.add_var(0.0);
      cover.terms.emplace_back(v, 0.5);
      loads[0].terms.emplace_back(v, 1.0);
    }
    p.add_row(std::move(cover));
  }
  for (int i = 0; i < n_machines; ++i) {
    Row& load = loads[static_cast<std::size_t>(i)];
    if (load.terms.empty()) continue;
    load.terms.emplace_back(t, -1.0);
    load.rel = Rel::Le;
    load.rhs = 0.0;
    p.add_row(std::move(load));
  }
  return p;
}

TEST(LpDifferential, DevexPivotsNoWorseThanDantzigOnLargeLp1) {
  // The regression this PR's pricing work must never lose: on the n=1024
  // LP1 family — the regime the revised engine exists for — Devex takes no
  // more pivots than Dantzig from a cold start. Both runs are fully
  // deterministic (fixed seed, explicit engine and rule, no warm handle, no
  // LP1 crash basis since this calls solve_simplex directly), so this is an
  // exact pin, not a statistical one.
  const Problem p = gen_lp1_large(0xB16'1024ULL, 1024, 8);
  SimplexOptions dantzig;
  dantzig.engine = SimplexEngine::Revised;
  dantzig.pricing = PricingRule::Dantzig;
  SimplexOptions devex = dantzig;
  devex.pricing = PricingRule::Devex;

  const Solution sd = solve_simplex(p, dantzig);
  const Solution sv = solve_simplex(p, devex);
  ASSERT_EQ(sd.status, Status::Optimal);
  ASSERT_EQ(sv.status, Status::Optimal);
  ASSERT_EQ(sd.engine, SimplexEngine::Revised);
  ASSERT_EQ(sv.engine, SimplexEngine::Revised);
  EXPECT_NEAR(sd.objective, sv.objective,
              1e-9 * (1.0 + std::fabs(sd.objective)));
  EXPECT_LE(sv.iterations, sd.iterations)
      << "Devex took more pivots than Dantzig on the n=1024 LP1 family "
         "(devex=" << sv.iterations << " dantzig=" << sd.iterations << ")";
  std::cout << "[differential] n=1024 lp1 pivots: dantzig=" << sd.iterations
            << " devex=" << sv.iterations << "\n";
}

// Note on SUU_LP_REFACTOR_INTERVAL coverage: the env override is read once
// per process, so the scheduled mid-solve refactorization path is stressed
// by a SECOND ctest registration of this binary
// (test_lp_differential_refactor_stress in CMakeLists.txt) that sets
// SUU_LP_REFACTOR_INTERVAL=1 — refactorizing after every pivot is the
// harshest consistency check the eta file can get.

}  // namespace
}  // namespace suu::lp
