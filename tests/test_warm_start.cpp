// Regression guards for warm-start-on-by-default (SolverOptions::warm_start
// flipped true in the revised-simplex PR). Two invariants keep the flip
// honest:
//
//  1. Warm re-solves never pay more priced pivots than their cold
//     counterparts, and an accepted seed skips phase 1 outright.
//  2. The table1-style experiment output — the bytes every recorded golden
//     is built from — is identical with warm starts on and off, at any
//     cell fan-out, under the default engine. (Verified against the PR 2
//     recorded goldens when this was landed; the cold trajectory IS the
//     recorded one, so warm == cold means warm == recorded.)
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algos/suu_t.hpp"
#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "core/generators.hpp"
#include "lp/simplex.hpp"
#include "rounding/lp2.hpp"
#include "util/rng.hpp"

namespace suu {
namespace {

core::Instance chains_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  return core::make_chains(6, 2, 5, 4, core::MachineModel::uniform(0.3, 0.9),
                           rng);
}

TEST(WarmStartRegression, Lp2ResolvePivotsMonotoneNonincreasingVsCold) {
  const core::Instance inst = chains_instance(77);
  const auto chains = inst.dag().chains();

  // A chain of re-solves of the same program: cold pays the full two-phase
  // bill every time; warm must never pay more, and after the first solve
  // must skip phase 1 entirely.
  std::vector<int> cold_pivots;
  for (int i = 0; i < 5; ++i) {
    const rounding::Lp2Result cold = rounding::solve_and_round_lp2(inst, chains);
    cold_pivots.push_back(cold.simplex_iterations);
    EXPECT_GT(cold.simplex_phase1_iterations, 0);
  }

  lp::WarmStart warm;
  for (int i = 0; i < 5; ++i) {
    const rounding::Lp2Result hot =
        rounding::solve_and_round_lp2(inst, chains, &warm);
    EXPECT_LE(hot.simplex_iterations, cold_pivots[static_cast<std::size_t>(i)])
        << "warm re-solve " << i << " pivoted more than cold";
    if (i > 0) {
      EXPECT_EQ(hot.simplex_phase1_iterations, 0)
          << "warm re-solve " << i << " re-ran phase 1";
    }
  }
  EXPECT_EQ(warm.hits, 4);
  EXPECT_EQ(warm.misses, 1);  // the seeding first solve
}

TEST(WarmStartRegression, SuuTBlockChainingMatchesColdPrecompute) {
  // The registry's default path now chains warm starts across SUU-T's
  // per-block LP2 solves; the cached artifacts must be value-identical to a
  // cold precompute (same optima, same rounded assignments), with phase-1
  // pivots saved on at least the blocks whose seed fit.
  util::Rng rng(31);
  const core::Instance inst = core::make_out_forest(
      24, 4, 0.15, 3, core::MachineModel::uniform(0.3, 0.9), rng);
  const auto cold = algos::SuuTPolicy::precompute(inst, /*warm_start=*/false);
  const auto warm = algos::SuuTPolicy::precompute(inst, /*warm_start=*/true);
  ASSERT_EQ(cold->lp2.size(), warm->lp2.size());
  int cold_p1 = 0, warm_p1 = 0;
  for (std::size_t b = 0; b < cold->lp2.size(); ++b) {
    EXPECT_DOUBLE_EQ(cold->lp2[b]->t_fractional, warm->lp2[b]->t_fractional)
        << "block " << b;
    EXPECT_EQ(cold->lp2[b]->d, warm->lp2[b]->d) << "block " << b;
    cold_p1 += cold->lp2[b]->simplex_phase1_iterations;
    warm_p1 += warm->lp2[b]->simplex_phase1_iterations;
  }
  EXPECT_LE(warm_p1, cold_p1);
}

std::string table1_json(bool warm_start, unsigned cell_threads) {
  api::ExperimentRunner::Options ropt;
  ropt.seed = 3;
  ropt.replications = 12;
  ropt.threads = 1;
  ropt.cell_threads = cell_threads;
  api::ExperimentRunner runner(ropt);
  runner.options().strict_eligibility = true;

  api::SolverOptions sopt;
  sopt.warm_start = warm_start;
  std::vector<std::pair<std::string, std::shared_ptr<const core::Instance>>>
      instances;
  for (const int n : {12, 24}) {
    util::Rng rng(3 + static_cast<std::uint64_t>(n));
    instances.emplace_back(
        "out-forest n=" + std::to_string(n),
        std::make_shared<const core::Instance>(core::make_out_forest(
            n, 4, 0.15, 3, core::MachineModel::uniform(0.3, 0.9), rng)));
  }
  // "auto" resolves to suu-t on forests — the solver the flip affects.
  runner.add_grid(instances, {"round-robin", "auto"}, sopt,
                  /*auto_lower_bound=*/true);
  runner.run();
  std::ostringstream os;
  runner.print_json(os);
  return os.str();
}

TEST(WarmStartRegression, Table1JsonByteIdenticalWarmVsRecordedCold) {
  // The cold trajectory is what every recorded table1 golden was built
  // from; the default-on warm chain must reproduce it byte for byte.
  const std::string cold = table1_json(/*warm_start=*/false, 1);
  const std::string warm = table1_json(/*warm_start=*/true, 1);
  ASSERT_FALSE(cold.empty());
  EXPECT_EQ(cold, warm);
  EXPECT_NE(cold.find("\"solver\":\"suu-t\""), std::string::npos);
}

TEST(WarmStartRegression, Table1JsonByteStableAcrossRunsAndCellThreads) {
  const std::string once = table1_json(/*warm_start=*/true, 1);
  EXPECT_EQ(once, table1_json(true, 1)) << "run-to-run bytes drifted";
  EXPECT_EQ(once, table1_json(true, 3)) << "cell fan-out changed bytes";
}

TEST(WarmStartRegression, DefaultOptionsChainWarmStarts) {
  // The flip itself: a default-constructed SolverOptions must request
  // warm-start block chaining (and the prepare key must distinguish the
  // two, or cached artifacts would alias across the flag).
  const api::SolverOptions def;
  EXPECT_TRUE(def.warm_start);
  api::SolverOptions off;
  off.warm_start = false;
  const core::Instance inst = chains_instance(5);
  EXPECT_NE(api::SolverRegistry::prepare_key(inst, "suu-c", def),
            api::SolverRegistry::prepare_key(inst, "suu-c", off));
  EXPECT_NE(api::SolverRegistry::prepare_key(
                inst, "suu-c",
                [] {
                  api::SolverOptions o;
                  o.lp1.engine = lp::SimplexEngine::Revised;
                  return o;
                }()),
            api::SolverRegistry::prepare_key(inst, "suu-c", def))
      << "lp engine must be part of the prepare key";
}

}  // namespace
}  // namespace suu
