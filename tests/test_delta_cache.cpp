// Cache edge cases of the update_instance incremental re-solve path, plus
// the busy_handle stream guard driven through the TCP event loop.
//
// The contract under test (api/precompute_cache.hpp, service/engine.cpp):
// warm-starting a delta re-prepare from the parent entry's recorded basis
// is an OPPORTUNISTIC optimization layered on a correctness-neutral
// fallback. Whatever happens to the parent entry — evicted before the
// child update, surviving cache pressure via its session pin, re-hit after
// an A->B->A fingerprint round trip, or its handle LRU-expired mid-chain —
// the handle's answers stay byte-identical to a cold parse of the mutated
// instance; only Stats::delta_warm_hits and the cache counters move.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/precompute_cache.hpp"
#include "core/delta.hpp"
#include "core/generators.hpp"
#include "core/instance.hpp"
#include "core/io.hpp"
#include "service/engine.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "util/rng.hpp"

namespace suu {
namespace {

using service::Engine;
using service::Json;

std::string payload(const core::Instance& inst) {
  std::ostringstream os;
  core::write_instance(os, inst);
  return os.str();
}

std::string quoted(const std::string& s) {
  std::string out;
  service::json_append_quoted(out, s);
  return out;
}

core::Instance independent_instance(int n, int m, std::uint64_t seed) {
  util::Rng gen(seed);
  return core::make_independent(n, m, core::MachineModel::uniform(0.3, 0.95),
                                gen);
}

/// Open `inst` on `engine`; returns the assigned handle.
std::uint64_t open_handle(Engine& engine, const core::Instance& inst) {
  const Json resp = Json::parse(engine.handle(
      R"({"id":1,"method":"open_instance","params":{"instance":)" +
      quoted(payload(inst)) + "}}"));
  EXPECT_TRUE(resp.find("ok")->as_bool("ok")) << resp.dump();
  return static_cast<std::uint64_t>(
      resp.find("result")->find("handle")->as_int64("handle"));
}

std::string solve_via_handle(Engine& engine, std::uint64_t handle) {
  return engine.handle(R"({"id":9,"method":"solve","params":{"handle":)" +
                       std::to_string(handle) +
                       R"(,"lower_bound":true}})");
}

std::string solve_cold_inline(Engine& engine, const core::Instance& inst) {
  return engine.handle(
      R"({"id":9,"method":"solve","params":{"instance":)" +
      quoted(payload(inst)) +
      R"(,"lower_bound":true,"options":{"reuse_cache":false}}})");
}

/// RAII guard: clean slate for the process-wide cache, restored afterwards
/// so later tests (and other suites in this binary) see the default shape.
struct CacheSandbox {
  CacheSandbox() {
    api::PrecomputeCache::global().clear();
    api::PrecomputeCache::global().set_capacity(256);
    api::PrecomputeCache::global().reset_stats();
  }
  ~CacheSandbox() {
    api::PrecomputeCache::global().clear();
    api::PrecomputeCache::global().set_capacity(256);
    api::PrecomputeCache::global().reset_stats();
  }
};

// ------------------------------------------------- parent entry lifecycle

// Evicting the parent's cache entry between its solve and the child's
// update kills the warm seed (annotations ride the entry), but the child
// re-prepare just runs cold: bytes identical, delta_warm_hits untouched.
TEST(DeltaCache, ParentEvictedBeforeUpdateFallsBackCold) {
  CacheSandbox sandbox;
  Engine engine;
  const core::Instance root = core::apply_delta(
      independent_instance(6, 3, 401), core::InstanceDelta{});
  const std::uint64_t handle = open_handle(engine, root);
  solve_via_handle(engine, handle);  // caches + annotates the parent entry

  // Drop every entry (pins survive — the handle's keys stay exempt from
  // LRU once re-prepared, but the recorded basis is gone for good).
  api::PrecomputeCache::global().clear();

  const std::string update = engine.handle(
      R"({"id":2,"method":"update_instance","params":{"handle":)" +
      std::to_string(handle) + R"(,"q":{"0":0.5,"7":0.25}}})");
  ASSERT_TRUE(Json::parse(update).find("ok")->as_bool("ok")) << update;

  core::InstanceDelta delta;
  delta.q = {{0, 0.5}, {7, 0.25}};
  const core::Instance mutated = core::apply_delta(root, delta);
  EXPECT_EQ(solve_via_handle(engine, handle),
            solve_cold_inline(engine, mutated));
  EXPECT_EQ(engine.stats().delta_warm_hits, 0u)
      << "no parent basis existed — nothing could have warm-started";
  EXPECT_EQ(engine.stats().deltas_applied, 1u);
  engine.handle(R"({"id":3,"method":"close_instance","params":{"handle":)" +
                std::to_string(handle) + "}}");
}

// A session's pinned prepare keys are exempt from LRU eviction: flooding
// the cache far past a tiny capacity with one-shot instances must not
// evict the open handle's entry — the next handle solve is a cache hit.
TEST(DeltaCache, PinnedParentSurvivesCachePressure) {
  CacheSandbox sandbox;
  api::PrecomputeCache& cache = api::PrecomputeCache::global();
  cache.set_capacity(3);

  Engine engine;
  const core::Instance root = core::apply_delta(
      independent_instance(6, 3, 402), core::InstanceDelta{});
  const std::uint64_t handle = open_handle(engine, root);
  const std::string pinned_solve = solve_via_handle(engine, handle);
  EXPECT_GE(cache.stats().pinned, 1u);

  // Ten distinct unpinned instances churn through a capacity-3 cache.
  for (int i = 0; i < 10; ++i) {
    const core::Instance other = independent_instance(5, 2, 500 + i);
    engine.handle(R"({"id":4,"method":"solve","params":{"instance":)" +
                  quoted(payload(other)) + "}}");
  }
  EXPECT_GT(cache.stats().evictions, 0u) << "flood never exceeded capacity";

  const api::PrecomputeCache::Stats before = cache.stats();
  EXPECT_EQ(solve_via_handle(engine, handle), pinned_solve);
  const api::PrecomputeCache::Stats after = cache.stats();
  EXPECT_EQ(after.hits, before.hits + 1)
      << "the pinned entry should still be resident";
  EXPECT_EQ(after.misses, before.misses);
  engine.handle(R"({"id":5,"method":"close_instance","params":{"handle":)" +
                std::to_string(handle) + "}}");
}

// Fingerprints are pure functions of instance content, so a delta and its
// inverse converge back onto the ORIGINAL prepare key — the chain's first
// entry is still cached (and pinned) and the third solve re-hits it
// instead of preparing a third time.
TEST(DeltaCache, InverseDeltaConvergesOntoOriginalCacheEntry) {
  CacheSandbox sandbox;
  api::PrecomputeCache& cache = api::PrecomputeCache::global();
  Engine engine;
  const core::Instance root = core::apply_delta(
      independent_instance(5, 3, 403), core::InstanceDelta{});
  const double orig = root.q(1, 2);  // cell = job 2 * m 3 + machine 1 = 7
  const std::uint64_t handle = open_handle(engine, root);
  const std::string first = solve_via_handle(engine, handle);

  // A -> B: move one cell and add one edge.
  const std::string fwd = engine.handle(
      R"({"id":2,"method":"update_instance","params":{"handle":)" +
      std::to_string(handle) +
      R"(,"q":{"7":0.5},"add_edges":[[0,4]]}})");
  ASSERT_TRUE(Json::parse(fwd).find("ok")->as_bool("ok")) << fwd;
  solve_via_handle(engine, handle);

  // B -> A: restore the cell (exact bytes via json_number's round-trip
  // formatting) and delete the edge again.
  const std::string back = engine.handle(
      R"({"id":3,"method":"update_instance","params":{"handle":)" +
      std::to_string(handle) + R"(,"q":{"7":)" + service::json_number(orig) +
      R"(},"del_edges":[[0,4]]}})");
  const Json back_resp = Json::parse(back);
  ASSERT_TRUE(back_resp.find("ok")->as_bool("ok")) << back;
  char fp[24];
  std::snprintf(fp, sizeof fp, "0x%016llx",
                static_cast<unsigned long long>(root.fingerprint()));
  EXPECT_EQ(
      back_resp.find("result")->find("fingerprint")->as_string("fingerprint"),
      fp)
      << "delta + inverse delta must reproduce the original fingerprint";

  const api::PrecomputeCache::Stats before = cache.stats();
  EXPECT_EQ(solve_via_handle(engine, handle), first);
  const api::PrecomputeCache::Stats after = cache.stats();
  EXPECT_EQ(after.hits, before.hits + 1)
      << "the A-fingerprint entry was prepared once already";
  EXPECT_EQ(after.misses, before.misses);
  engine.handle(R"({"id":4,"method":"close_instance","params":{"handle":)" +
                std::to_string(handle) + "}}");
}

// max_open_handles LRU expiry mid-chain: updating an expired handle is
// unknown_handle (the client's cue to re-open with its locally mutated
// instance — exactly what client::ShardCoordinator::update does).
TEST(DeltaCache, HandleLruExpiryMidChainAnswersUnknownHandle) {
  CacheSandbox sandbox;
  Engine::Config cfg;
  cfg.max_open_handles = 1;
  Engine engine(cfg);
  const core::Instance a = core::apply_delta(
      independent_instance(5, 2, 404), core::InstanceDelta{});
  const core::Instance b = core::apply_delta(
      independent_instance(6, 3, 405), core::InstanceDelta{});

  const std::uint64_t h1 = open_handle(engine, a);
  const std::string upd1 = engine.handle(
      R"({"id":2,"method":"update_instance","params":{"handle":)" +
      std::to_string(h1) + R"(,"q":{"1":0.75}}})");
  ASSERT_TRUE(Json::parse(upd1).find("ok")->as_bool("ok")) << upd1;

  const std::uint64_t h2 = open_handle(engine, b);  // expires h1
  EXPECT_EQ(engine.stats().sessions_expired, 1u);

  const Json dead = Json::parse(engine.handle(
      R"({"id":3,"method":"update_instance","params":{"handle":)" +
      std::to_string(h1) + R"(,"q":{"1":0.5}}})"));
  EXPECT_FALSE(dead.find("ok")->as_bool("ok"));
  EXPECT_EQ(dead.find("error")->find("code")->as_string("code"),
            service::error_code::kUnknownHandle);

  // The surviving handle still takes deltas.
  const std::string upd2 = engine.handle(
      R"({"id":4,"method":"update_instance","params":{"handle":)" +
      std::to_string(h2) + R"(,"q":{"2":0.5}}})");
  EXPECT_TRUE(Json::parse(upd2).find("ok")->as_bool("ok")) << upd2;
  engine.handle(R"({"id":5,"method":"close_instance","params":{"handle":)" +
                std::to_string(h2) + "}}");
}

// ----------------------------------------------- busy_handle over TCP

void send_line(int fd, std::string line) {
  line.push_back('\n');
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t w = ::write(fd, line.data() + off, line.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      ADD_FAILURE() << "client write failed";
      return;
    }
    off += static_cast<std::size_t>(w);
  }
}

/// Next full line from `fd`, buffering partial reads in `buf`; empty on
/// EOF/error.
std::string read_line(int fd, std::string* buf) {
  for (;;) {
    const std::size_t pos = buf->find('\n');
    if (pos != std::string::npos) {
      std::string line = buf->substr(0, pos);
      buf->erase(0, pos + 1);
      return line;
    }
    char tmp[4096];
    const ssize_t r = ::read(fd, tmp, sizeof tmp);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return {};
    buf->append(tmp, static_cast<std::size_t>(r));
  }
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

// A handle with a streamed estimate in flight rejects update_instance with
// busy_handle (Retryable) until the stream's terminal envelope — the
// stream's shard sequence must all come from ONE instance. Driven through
// the epoll TCP transport with the stream and the update on separate
// connections: exactly how a fan-out client would collide with a
// concurrent updater in production.
TEST(DeltaCache, BusyHandleWhileStreamInFlightOverTcp) {
  CacheSandbox sandbox;
  Engine::Config cfg;
  cfg.workers = 4;
  Engine engine(cfg);
  service::TcpServer server(engine, 0);
  ASSERT_GT(server.port(), 0);
  std::thread server_thread([&] { server.run(); });

  const int stream_fd = connect_loopback(server.port());
  const int update_fd = connect_loopback(server.port());
  std::string stream_buf;
  std::string update_buf;

  const core::Instance root = core::apply_delta(
      independent_instance(6, 3, 406), core::InstanceDelta{});
  send_line(stream_fd,
            R"({"id":"open","method":"open_instance","params":{"instance":)" +
                quoted(payload(root)) + "}}");
  const Json opened = Json::parse(read_line(stream_fd, &stream_buf));
  ASSERT_TRUE(opened.find("ok")->as_bool("ok")) << opened.dump();
  const std::uint64_t handle = static_cast<std::uint64_t>(
      opened.find("result")->find("handle")->as_int64("handle"));

  // Big enough that shards 1..3 are still computing long after shard 0's
  // envelope reaches us; the update round-trips in well under a shard.
  send_line(stream_fd,
            R"({"id":"est","method":"estimate","params":{"handle":)" +
                std::to_string(handle) +
                R"(,"replications":60000,"seed":3,"stream":true,"shards":4}})");
  const Json first_shard = Json::parse(read_line(stream_fd, &stream_buf));
  ASSERT_TRUE(first_shard.find("ok")->as_bool("ok")) << first_shard.dump();
  ASSERT_EQ(first_shard.find("seq")->as_int64("seq"), 0);

  // Stream provably in flight (its terminal line hasn't been sent): the
  // update must bounce.
  send_line(update_fd,
            R"({"id":"upd","method":"update_instance","params":{"handle":)" +
                std::to_string(handle) + R"(,"q":{"0":0.5}}})");
  const Json busy = Json::parse(read_line(update_fd, &update_buf));
  EXPECT_FALSE(busy.find("ok")->as_bool("ok"));
  EXPECT_EQ(busy.find("error")->find("code")->as_string("code"),
            service::error_code::kBusyHandle)
      << busy.dump();

  // Drain the stream to its terminal envelope; the mark is then released
  // and the same update succeeds.
  for (;;) {
    const Json env = Json::parse(read_line(stream_fd, &stream_buf));
    ASSERT_TRUE(env.find("ok")->as_bool("ok")) << env.dump();
    const Json* done = env.find("done");
    if (done != nullptr && done->as_bool("done")) break;
  }
  // The terminal envelope is written before the worker releases the mark,
  // so one more busy_handle is possible in that window — busy_handle is
  // classified Retryable for exactly this reason. Retry like a client.
  bool updated = false;
  for (int attempt = 0; attempt < 200 && !updated; ++attempt) {
    send_line(update_fd,
              R"({"id":"upd2","method":"update_instance","params":{"handle":)" +
                  std::to_string(handle) + R"(,"q":{"0":0.5}}})");
    const Json retried = Json::parse(read_line(update_fd, &update_buf));
    if (retried.find("ok")->as_bool("ok")) {
      updated = true;
      break;
    }
    ASSERT_EQ(retried.find("error")->find("code")->as_string("code"),
              service::error_code::kBusyHandle)
        << retried.dump();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(updated) << "update never succeeded after the stream drained";

  const Engine::Stats s = engine.stats();
  EXPECT_EQ(s.streams, 1u);
  EXPECT_EQ(s.deltas_applied, 1u);

  ::close(stream_fd);
  ::close(update_fd);
  server.stop();
  server_thread.join();
}

}  // namespace
}  // namespace suu
