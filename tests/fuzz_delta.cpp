// libFuzzer target for the update_instance delta pipeline: wire params ->
// parse_update_instance_params -> core::apply_delta against a fixed base
// instance (see fuzz_io.cpp for the two build modes and
// tests/corpus/delta for the seeds).
//
// Contract: hostile bytes raise exactly the typed rejections the service
// maps to error codes — service::JsonError (parse_error),
// service::ProtocolError (bad_params / bad_delta) or core::DeltaError
// (bad_delta) — and nothing else. Any ACCEPTED delta must be
// deterministic (applying it twice produces the same fingerprint) and
// canonical (the mutated instance round-trips through write_instance /
// read_instance onto the same bytes), because the engine re-fingerprints
// and re-serializes the mutated instance for handle re-opens.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "core/delta.hpp"
#include "core/generators.hpp"
#include "core/instance.hpp"
#include "core/io.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "util/rng.hpp"

namespace {

// 4 jobs on 3 machines, two chains (edges 0->1 and 2->3), canonicalized the
// same way the engine canonicalizes (apply_delta with an empty delta), so
// valid corpus seeds can name real cells and edges.
const suu::core::Instance& base_instance() {
  static const suu::core::Instance inst = [] {
    suu::util::Rng gen(7);
    return suu::core::apply_delta(
        suu::core::make_chains(2, 2, 2, 3,
                               suu::core::MachineModel::uniform(0.3, 0.9),
                               gen),
        suu::core::InstanceDelta{});
  }();
  return inst;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  suu::core::InstanceDelta delta;
  try {
    const suu::service::Json params = suu::service::Json::parse(text);
    delta = suu::service::parse_update_instance_params(params).delta;
  } catch (const suu::service::JsonError&) {
    return 0;  // parse_error
  } catch (const suu::service::ProtocolError&) {
    return 0;  // bad_params / bad_delta
  }
  suu::core::Instance mutated = base_instance();
  try {
    mutated = suu::core::apply_delta(base_instance(), delta);
  } catch (const suu::core::DeltaError&) {
    return 0;  // bad_delta (semantic: cells, edges, cycles, limits)
  }
  // Accepted: the mutation must be deterministic...
  const suu::core::Instance again =
      suu::core::apply_delta(base_instance(), delta);
  if (again.fingerprint() != mutated.fingerprint()) {
    __builtin_trap();  // same delta, different instance
  }
  // ...and canonical: serialize -> parse -> serialize is a fixed point
  // (read_instance throwing on bytes write_instance produced is a finding).
  std::ostringstream first;
  suu::core::write_instance(first, mutated);
  std::istringstream back(first.str());
  const suu::core::Instance reread = suu::core::read_instance(back);
  std::ostringstream second;
  suu::core::write_instance(second, reread);
  if (second.str() != first.str() ||
      reread.fingerprint() != mutated.fingerprint()) {
    __builtin_trap();  // canonical form is not a fixed point
  }
  return 0;
}
