#include <gtest/gtest.h>

#include <cmath>

#include "algos/baselines.hpp"
#include "algos/lower_bounds.hpp"
#include "algos/suu_i.hpp"
#include "core/generators.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"

namespace suu::algos {
namespace {

sim::EstimateOptions fast_opts(int reps, std::uint64_t seed) {
  sim::EstimateOptions o;
  o.replications = reps;
  o.seed = seed;
  return o;
}

TEST(SemRoundBound, Values) {
  EXPECT_EQ(sem_round_bound(2, 2), 3);    // loglog 2 = 0
  EXPECT_EQ(sem_round_bound(4, 100), 4);  // min 4: log2=2, loglog=1
  EXPECT_EQ(sem_round_bound(16, 16), 5);  // log2=4, loglog=2
  EXPECT_EQ(sem_round_bound(256, 300), 6);
  EXPECT_EQ(sem_round_bound(1, 1), 3);    // clamped
  EXPECT_EQ(sem_round_bound(100000, 3), 4);  // min(m,n)=3
}

TEST(ObliviousReplay, CyclicWrapsAround) {
  sched::ObliviousSchedule s(1);
  s.append({0});
  s.append({1});
  ObliviousReplayPolicy p(s, /*cyclic=*/true);
  core::Instance inst = core::Instance::independent(2, 1, {0.5, 0.5});
  sim::ExecState st(inst);
  EXPECT_EQ(p.decide(st)[0], 0);
  EXPECT_EQ(p.decide(st)[0], 1);
  EXPECT_EQ(p.decide(st)[0], 0);
}

TEST(ObliviousReplay, NonCyclicGoesIdle) {
  sched::ObliviousSchedule s(1);
  s.append({0});
  ObliviousReplayPolicy p(s, /*cyclic=*/false);
  core::Instance inst = core::Instance::independent(1, 1, {0.5});
  sim::ExecState st(inst);
  EXPECT_EQ(p.decide(st)[0], 0);
  EXPECT_EQ(p.decide(st)[0], sched::kIdle);
}

TEST(ObliviousReplay, EmptyScheduleRejected) {
  sched::ObliviousSchedule s(1);
  EXPECT_THROW(ObliviousReplayPolicy(s, true), util::CheckError);
}

class CompletesAllJobs
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

// Every policy must finish every instance (the engine would throw on cap).
TEST_P(CompletesAllJobs, AllPolicies) {
  const auto [n, m, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  core::Instance inst = core::make_independent(
      n, m, core::MachineModel::uniform(0.3, 0.95), rng);
  const auto opts = fast_opts(40, 1000 + static_cast<std::uint64_t>(seed));

  const std::vector<sim::PolicyFactory> factories = {
      [] { return std::make_unique<AllOnOnePolicy>(); },
      [] { return std::make_unique<RoundRobinPolicy>(); },
      [] { return std::make_unique<BestMachinePolicy>(); },
      [] { return std::make_unique<GreedyLrPolicy>(); },
      [] { return std::make_unique<SuuIOblPolicy>(); },
      [] { return std::make_unique<SuuISemPolicy>(); },
  };
  for (const auto& f : factories) {
    const util::Estimate e = sim::estimate_makespan(inst, f, opts);
    EXPECT_GE(e.mean, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompletesAllJobs,
                         ::testing::Combine(::testing::Values(1, 5, 12),
                                            ::testing::Values(1, 4),
                                            ::testing::Values(0, 1)));

TEST(SuuIObl, PrecomputedScheduleShared) {
  util::Rng rng(8);
  core::Instance inst = core::make_independent(
      6, 3, core::MachineModel::uniform(0.4, 0.9), rng);
  auto pre = SuuIOblPolicy::precompute(inst);
  EXPECT_GT(pre->schedule.length(), 0);
  const util::Estimate e = sim::estimate_makespan(
      inst, [pre] { return std::make_unique<SuuIOblPolicy>(pre); },
      fast_opts(60, 3));
  EXPECT_GE(e.mean, 1.0);
}

TEST(SuuIObl, MismatchedPrecomputeRejected) {
  util::Rng rng(8);
  core::Instance a = core::make_independent(
      4, 3, core::MachineModel::uniform(0.4, 0.9), rng);
  core::Instance b = core::make_independent(
      4, 2, core::MachineModel::uniform(0.4, 0.9), rng);
  auto pre = SuuIOblPolicy::precompute(a);
  SuuIOblPolicy p(pre);
  EXPECT_THROW(p.reset(b, util::Rng(1)), util::CheckError);
}

TEST(SuuISem, RoundsNeverExceedBoundBeforeFallback) {
  util::Rng rng(12);
  core::Instance inst = core::make_independent(
      10, 4, core::MachineModel::uniform(0.5, 0.98), rng);
  SuuISemPolicy policy;
  sim::ExecConfig cfg;
  cfg.seed = 4;
  const sim::ExecResult r = sim::execute(inst, policy, cfg);
  EXPECT_FALSE(r.capped);
  EXPECT_LE(policy.rounds_used(), policy.round_bound());
  EXPECT_EQ(policy.round_bound(), sem_round_bound(10, 4));
}

TEST(SuuISem, UniverseRestrictsScheduling) {
  // Jobs outside the universe must never be assigned machines.
  util::Rng rng(13);
  core::Instance inst = core::make_independent(
      6, 2, core::MachineModel::uniform(0.3, 0.8), rng);
  SuuISemPolicy::Config cfg;
  cfg.universe = {1, 3};
  SuuISemPolicy policy(std::move(cfg));
  policy.reset(inst, util::Rng(9));
  sim::ExecState st(inst);
  for (int step = 0; step < 200; ++step) {
    const sched::Assignment a = policy.decide(st);
    for (const int j : a) {
      if (j != sched::kIdle) {
        EXPECT_TRUE(j == 1 || j == 3) << "assigned job " << j;
      }
    }
  }
}

TEST(SuuISem, SequentialFallbackWhenJobsFewerThanMachines) {
  // n = 2 <= m = 3: after K rounds the fallback runs jobs one at a time on
  // all machines. Use nearly-hopeless probabilities so rounds fail often.
  core::Instance inst = core::Instance::independent(
      2, 3, {0.99, 0.99, 0.99, 0.99, 0.99, 0.99});
  sim::EstimateOptions o = fast_opts(200, 21);
  const util::Estimate e = sim::estimate_makespan(
      inst, [] { return std::make_unique<SuuISemPolicy>(); }, o);
  // Expected time once ganged: per-step success 1 - 0.99^3 ~ 0.0297 per job.
  EXPECT_GT(e.mean, 10.0);
}

TEST(LowerBound, BelowSimulatedOptimalPolicies) {
  // The Lemma 1 bound must lower-bound every policy's measured makespan.
  for (int seed = 0; seed < 4; ++seed) {
    util::Rng rng(40 + static_cast<std::uint64_t>(seed));
    core::Instance inst = core::make_independent(
        6, 3, core::MachineModel::uniform(0.2, 0.9), rng);
    const LowerBound lb = lower_bound_independent(inst);
    const util::Estimate e = sim::estimate_makespan(
        inst, [] { return std::make_unique<SuuISemPolicy>(); },
        fast_opts(800, 50 + static_cast<std::uint64_t>(seed)));
    EXPECT_LE(lb.value, e.mean + 3 * e.ci95_half)
        << "LB " << lb.value << " vs measured " << e.mean;
    EXPECT_GE(lb.value, 1.0);
  }
}

TEST(LowerBound, TrivialFloorIsOne) {
  core::Instance inst = core::Instance::independent(1, 4,
                                                    {0.0, 0.0, 0.0, 0.0});
  const LowerBound lb = lower_bound_independent(inst);
  EXPECT_DOUBLE_EQ(lb.value, 1.0);
}

TEST(GreedyLr, CoversEveryJobEachRound) {
  util::Rng rng(31);
  core::Instance inst = core::make_independent(
      8, 3, core::MachineModel::uniform(0.4, 0.9), rng);
  GreedyLrPolicy p(0.5);
  p.reset(inst, util::Rng(1));
  EXPECT_EQ(p.rounds(), 1);
}

TEST(Baselines, AllOnOneGangsEveryMachine) {
  core::Instance inst = core::Instance::independent(2, 3,
                                                    {0.5, 0.5, 0.5, 0.5,
                                                     0.5, 0.5});
  AllOnOnePolicy p;
  sim::ExecState st(inst);
  const sched::Assignment a = p.decide(st);
  for (const int j : a) EXPECT_EQ(j, 0);
}

TEST(Baselines, RoundRobinSpreadsMachines) {
  core::Instance inst = core::Instance::independent(
      3, 3, std::vector<double>(9, 0.5));
  RoundRobinPolicy p;
  sim::ExecState st(inst);
  const sched::Assignment a = p.decide(st);
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], 1);
  EXPECT_EQ(a[2], 2);
}

TEST(Baselines, BestMachineUsesHighestEll) {
  // Machine 1 is better for job 0.
  core::Instance inst = core::Instance::independent(1, 2, {0.9, 0.1});
  BestMachinePolicy p;
  p.reset(inst, util::Rng(1));
  sim::ExecState st(inst);
  const sched::Assignment a = p.decide(st);
  EXPECT_EQ(a[0], sched::kIdle);
  EXPECT_EQ(a[1], 0);
}

// The headline comparison (Theorem 3 vs Theorem 4): on the identical-
// machines coupon-collector family, SUU-I-SEM should not lose to SUU-I-OBL,
// whose repetition pays a log n factor.
TEST(Headline, SemNotWorseThanOblOnCouponFamily) {
  util::Rng rng(60);
  core::Instance inst = core::make_independent(
      48, 8, core::MachineModel::identical(0.7), rng);
  auto pre = SuuIOblPolicy::precompute(inst);
  auto pre_sem = SuuISemPolicy::precompute_round1(inst);
  const util::Estimate obl = sim::estimate_makespan(
      inst, [pre] { return std::make_unique<SuuIOblPolicy>(pre); },
      fast_opts(300, 61));
  const util::Estimate sem = sim::estimate_makespan(
      inst,
      [pre_sem] {
        SuuISemPolicy::Config cfg;
        cfg.round1 = pre_sem;
        return std::make_unique<SuuISemPolicy>(std::move(cfg));
      },
      fast_opts(300, 62));
  EXPECT_LE(sem.mean, obl.mean * 1.10 + 3 * (sem.ci95_half + obl.ci95_half));
}

}  // namespace
}  // namespace suu::algos
