#include "algos/suu_c.hpp"

#include <gtest/gtest.h>

#include "algos/lower_bounds.hpp"
#include "core/generators.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"

namespace suu::algos {
namespace {

sim::EstimateOptions strict_opts(int reps, std::uint64_t seed) {
  sim::EstimateOptions o;
  o.replications = reps;
  o.seed = seed;
  o.strict_eligibility = true;  // SUU-C must never schedule ahead of a chain
  return o;
}

TEST(SuuC, CompletesSingleChain) {
  core::Instance inst(3, 2, {0.5, 0.6, 0.4, 0.7, 0.5, 0.5},
                      core::make_chain_dag({3}));
  const util::Estimate e = sim::estimate_makespan(
      inst, [] { return std::make_unique<SuuCPolicy>(); },
      strict_opts(100, 1));
  EXPECT_GE(e.mean, 3.0);  // three sequential jobs need >= 3 steps
}

class SuuCFamilies
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(SuuCFamilies, CompletesUnderStrictEligibility) {
  const auto [n_chains, m, seed, delays] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 131 + 7);
  core::Instance inst = core::make_chains(
      n_chains, 1, 6, m, core::MachineModel::uniform(0.3, 0.95), rng);
  const bool d = delays;
  const util::Estimate e = sim::estimate_makespan(
      inst,
      [d] {
        SuuCPolicy::Config cfg;
        cfg.random_delays = d;
        return std::make_unique<SuuCPolicy>(std::move(cfg));
      },
      strict_opts(25, 100 + static_cast<std::uint64_t>(seed)));
  EXPECT_GE(e.mean, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SuuCFamilies,
                         ::testing::Combine(::testing::Values(1, 3, 6),
                                            ::testing::Values(2, 4),
                                            ::testing::Values(0, 1),
                                            ::testing::Bool()));

TEST(SuuC, WorksOnIndependentJobsAsSingletonChains) {
  util::Rng rng(5);
  core::Instance inst = core::make_independent(
      5, 3, core::MachineModel::uniform(0.3, 0.9), rng);
  const util::Estimate e = sim::estimate_makespan(
      inst, [] { return std::make_unique<SuuCPolicy>(); },
      strict_opts(50, 6));
  EXPECT_GE(e.mean, 1.0);
}

TEST(SuuC, ExplicitChainsRestrictUniverse) {
  // Give SUU-C only the first chain; it must never assign the second.
  core::Instance inst(4, 2, {0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
                      core::make_chain_dag({2, 2}));
  SuuCPolicy::Config cfg;
  cfg.chains = {{0, 1}};
  SuuCPolicy policy(std::move(cfg));
  policy.reset(inst, util::Rng(3));
  sim::ExecState st(inst);
  for (int step = 0; step < 300; ++step) {
    const sched::Assignment a = policy.decide(st);
    for (const int j : a) {
      if (j != sched::kIdle) {
        EXPECT_LE(j, 1);
      }
    }
  }
}

TEST(SuuC, DiagnosticsPopulated) {
  util::Rng rng(9);
  core::Instance inst = core::make_chains(
      4, 2, 4, 3, core::MachineModel::uniform(0.4, 0.9), rng);
  SuuCPolicy policy;
  sim::ExecConfig cfg;
  cfg.seed = 11;
  cfg.strict_eligibility = true;
  const sim::ExecResult r = sim::execute(inst, policy, cfg);
  EXPECT_FALSE(r.capped);
  EXPECT_GT(policy.supersteps(), 0);
  EXPECT_GE(policy.gamma(), 1);
  EXPECT_GE(policy.max_congestion(), 1);
  EXPECT_FALSE(policy.fell_back());
}

TEST(SuuC, GridRoundingStillCompletes) {
  util::Rng rng(13);
  core::Instance inst = core::make_chains(
      3, 2, 4, 2, core::MachineModel::uniform(0.4, 0.9), rng);
  const util::Estimate e = sim::estimate_makespan(
      inst,
      [] {
        SuuCPolicy::Config cfg;
        cfg.grid_rounding = true;
        return std::make_unique<SuuCPolicy>(std::move(cfg));
      },
      strict_opts(40, 14));
  EXPECT_GE(e.mean, 1.0);
}

TEST(SuuC, LongJobsTriggerBatches) {
  // One very hard job (tiny ell) inside a chain of easy jobs forces
  // d_j >> gamma, exercising the pause + SUU-I-SEM batch path.
  std::vector<double> q;
  const int n = 6, m = 2;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      q.push_back(j == 2 ? 0.999 : 0.3);  // job 2 nearly always fails
    }
  }
  core::Instance inst(n, m, std::move(q), core::make_chain_dag({n}));
  SuuCPolicy policy;
  sim::ExecConfig cfg;
  cfg.seed = 21;
  cfg.strict_eligibility = true;
  const sim::ExecResult r = sim::execute(inst, policy, cfg);
  EXPECT_FALSE(r.capped);
  EXPECT_GE(policy.batches_run(), 1) << "hard job should be batched";
}

TEST(SuuC, RandomDelaysReduceCongestionOnManyChains) {
  // Many identical chains all wanting the same machines: without delays the
  // first superstep has congestion ~ n_chains; with delays it drops.
  util::Rng rng(17);
  const int n_chains = 24;
  core::Instance inst = core::make_chains(
      n_chains, 2, 2, 4, core::MachineModel::identical(0.5), rng);

  auto max_congestion = [&](bool delays, std::uint64_t seed) {
    SuuCPolicy::Config cfg;
    cfg.random_delays = delays;
    SuuCPolicy policy(std::move(cfg));
    sim::ExecConfig ec;
    ec.seed = seed;
    ec.strict_eligibility = true;
    const sim::ExecResult r = sim::execute(inst, policy, ec);
    SUU_CHECK(!r.capped);
    return policy.max_congestion();
  };

  double with = 0, without = 0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    with += max_congestion(true, 100 + s);
    without += max_congestion(false, 100 + s);
  }
  EXPECT_LT(with, without) << "delays should lower peak congestion";
}

TEST(SuuC, LowerBoundBelowMeasured) {
  util::Rng rng(23);
  core::Instance inst = core::make_chains(
      3, 2, 4, 3, core::MachineModel::uniform(0.3, 0.9), rng);
  const LowerBound lb = lower_bound_chains(inst, inst.dag().chains());
  const util::Estimate e = sim::estimate_makespan(
      inst, [] { return std::make_unique<SuuCPolicy>(); },
      strict_opts(300, 24));
  EXPECT_LE(lb.value, e.mean + 3 * e.ci95_half);
  EXPECT_GT(lb.lp2_half, 0.0);
}

}  // namespace
}  // namespace suu::algos
