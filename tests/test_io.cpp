#include "core/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace suu::core {
namespace {

void expect_same(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.num_jobs(), b.num_jobs());
  ASSERT_EQ(a.num_machines(), b.num_machines());
  for (int j = 0; j < a.num_jobs(); ++j) {
    for (int i = 0; i < a.num_machines(); ++i) {
      EXPECT_DOUBLE_EQ(a.q(i, j), b.q(i, j)) << i << "," << j;
    }
  }
  ASSERT_EQ(a.dag().num_edges(), b.dag().num_edges());
  for (int v = 0; v < a.num_jobs(); ++v) {
    EXPECT_EQ(a.dag().succs(v), b.dag().succs(v));
  }
}

TEST(InstanceIo, RoundTripIndependent) {
  util::Rng rng(1);
  const Instance inst =
      make_independent(7, 4, MachineModel::uniform(0.2, 0.95), rng);
  std::stringstream ss;
  write_instance(ss, inst);
  const Instance back = read_instance(ss);
  expect_same(inst, back);
}

TEST(InstanceIo, RoundTripChains) {
  util::Rng rng(2);
  const Instance inst =
      make_chains(3, 2, 4, 3, MachineModel::uniform(0.3, 0.9), rng);
  std::stringstream ss;
  write_instance(ss, inst);
  expect_same(inst, read_instance(ss));
}

TEST(InstanceIo, RoundTripForest) {
  util::Rng rng(3);
  const Instance inst =
      make_out_forest(12, 2, 0.2, 3, MachineModel::uniform(0.3, 0.9), rng);
  std::stringstream ss;
  write_instance(ss, inst);
  expect_same(inst, read_instance(ss));
}

TEST(InstanceIo, ExactProbabilityBits) {
  // 17 significant digits round-trip doubles exactly.
  const Instance inst = Instance::independent(
      1, 2, {0.12345678901234567, 1.0 / 3.0});
  std::stringstream ss;
  write_instance(ss, inst);
  const Instance back = read_instance(ss);
  EXPECT_EQ(inst.q(0, 0), back.q(0, 0));
  EXPECT_EQ(inst.q(1, 0), back.q(1, 0));
}

TEST(InstanceIo, CommentsSkipped) {
  std::stringstream ss;
  ss << "# a comment\nsuu-instance v1\n# another\n1 1\n0.5\n0\n";
  const Instance inst = read_instance(ss);
  EXPECT_EQ(inst.num_jobs(), 1);
  EXPECT_DOUBLE_EQ(inst.q(0, 0), 0.5);
}

TEST(InstanceIo, RejectsGarbage) {
  std::stringstream a("not-an-instance 1 1");
  EXPECT_THROW(read_instance(a), util::CheckError);
  std::stringstream b("suu-instance v99\n1 1\n0.5\n0\n");
  EXPECT_THROW(read_instance(b), util::CheckError);
  std::stringstream c("suu-instance v1\n1 1\nabc\n0\n");
  EXPECT_THROW(read_instance(c), util::CheckError);
  std::stringstream d("suu-instance v1\n2 1\n0.5\n");  // truncated
  EXPECT_THROW(read_instance(d), util::CheckError);
}

TEST(InstanceIo, RejectsInvalidInstanceContent) {
  // Probability out of range caught by Instance validation.
  std::stringstream ss("suu-instance v1\n1 1\n1.5\n0\n");
  EXPECT_THROW(read_instance(ss), util::CheckError);
  // Cyclic dag.
  std::stringstream cyc("suu-instance v1\n2 1\n0.5\n0.5\n2\n0 1\n1 0\n");
  EXPECT_THROW(read_instance(cyc), util::CheckError);
}

TEST(InstanceIo, FileRoundTrip) {
  util::Rng rng(4);
  const Instance inst =
      make_independent(5, 3, MachineModel::sparse(0.5, 0.3, 0.9), rng);
  const std::string path = "/tmp/suu_io_test_instance.txt";
  save_instance(path, inst);
  const Instance back = load_instance(path);
  expect_same(inst, back);
  std::remove(path.c_str());
}

TEST(InstanceIo, MissingFileThrows) {
  EXPECT_THROW(load_instance("/nonexistent/dir/x.txt"), util::CheckError);
}

}  // namespace
}  // namespace suu::core
