#include "core/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace suu::core {
namespace {

void expect_same(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.num_jobs(), b.num_jobs());
  ASSERT_EQ(a.num_machines(), b.num_machines());
  for (int j = 0; j < a.num_jobs(); ++j) {
    for (int i = 0; i < a.num_machines(); ++i) {
      EXPECT_DOUBLE_EQ(a.q(i, j), b.q(i, j)) << i << "," << j;
    }
  }
  ASSERT_EQ(a.dag().num_edges(), b.dag().num_edges());
  for (int v = 0; v < a.num_jobs(); ++v) {
    EXPECT_EQ(a.dag().succs(v), b.dag().succs(v));
  }
}

TEST(InstanceIo, RoundTripIndependent) {
  util::Rng rng(1);
  const Instance inst =
      make_independent(7, 4, MachineModel::uniform(0.2, 0.95), rng);
  std::stringstream ss;
  write_instance(ss, inst);
  const Instance back = read_instance(ss);
  expect_same(inst, back);
}

TEST(InstanceIo, RoundTripChains) {
  util::Rng rng(2);
  const Instance inst =
      make_chains(3, 2, 4, 3, MachineModel::uniform(0.3, 0.9), rng);
  std::stringstream ss;
  write_instance(ss, inst);
  expect_same(inst, read_instance(ss));
}

TEST(InstanceIo, RoundTripForest) {
  util::Rng rng(3);
  const Instance inst =
      make_out_forest(12, 2, 0.2, 3, MachineModel::uniform(0.3, 0.9), rng);
  std::stringstream ss;
  write_instance(ss, inst);
  expect_same(inst, read_instance(ss));
}

TEST(InstanceIo, ExactProbabilityBits) {
  // 17 significant digits round-trip doubles exactly.
  const Instance inst = Instance::independent(
      1, 2, {0.12345678901234567, 1.0 / 3.0});
  std::stringstream ss;
  write_instance(ss, inst);
  const Instance back = read_instance(ss);
  EXPECT_EQ(inst.q(0, 0), back.q(0, 0));
  EXPECT_EQ(inst.q(1, 0), back.q(1, 0));
}

TEST(InstanceIo, CommentsSkipped) {
  std::stringstream ss;
  ss << "# a comment\nsuu-instance v1\n# another\n1 1\n0.5\n0\n";
  const Instance inst = read_instance(ss);
  EXPECT_EQ(inst.num_jobs(), 1);
  EXPECT_DOUBLE_EQ(inst.q(0, 0), 0.5);
}

TEST(InstanceIo, RejectsGarbage) {
  std::stringstream a("not-an-instance 1 1");
  EXPECT_THROW(read_instance(a), util::CheckError);
  std::stringstream b("suu-instance v99\n1 1\n0.5\n0\n");
  EXPECT_THROW(read_instance(b), util::CheckError);
  std::stringstream c("suu-instance v1\n1 1\nabc\n0\n");
  EXPECT_THROW(read_instance(c), util::CheckError);
  std::stringstream d("suu-instance v1\n2 1\n0.5\n");  // truncated
  EXPECT_THROW(read_instance(d), util::CheckError);
}

TEST(InstanceIo, RejectsInvalidInstanceContent) {
  // Probability out of range caught by Instance validation.
  std::stringstream ss("suu-instance v1\n1 1\n1.5\n0\n");
  EXPECT_THROW(read_instance(ss), util::CheckError);
  // Cyclic dag.
  std::stringstream cyc("suu-instance v1\n2 1\n0.5\n0.5\n2\n0 1\n1 0\n");
  EXPECT_THROW(read_instance(cyc), util::CheckError);
}

// The service feeds read_instance untrusted bytes: every malformed shape
// must raise the typed core::ParseError (a CheckError subclass, so legacy
// catch sites still work) — never an assert/abort or unbounded allocation.
TEST(InstanceIo, TypedParseErrors) {
  const auto expect_parse_error = [](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_THROW(read_instance(ss), ParseError) << text;
  };
  expect_parse_error("");                                   // empty stream
  expect_parse_error("suu-instance v1\n0 1\n");             // n < 1
  expect_parse_error("suu-instance v1\n-3 1\n");            // negative n
  expect_parse_error("suu-instance v1\n1 -2\n");            // negative m
  expect_parse_error("suu-instance v1\n99999999999999999999 1\n");  // overflow
  expect_parse_error("suu-instance v1\n1 1\nnan\n0\n");     // NaN probability
  expect_parse_error("suu-instance v1\n1 1\ninf\n0\n");     // inf probability
  expect_parse_error("suu-instance v1\n1 1\n-0.25\n0\n");   // q < 0
  expect_parse_error("suu-instance v1\n1 1\n1.5\n0\n");     // q > 1
  expect_parse_error("suu-instance v1\n1 1\n1\n0\n");       // no capable machine
  expect_parse_error("suu-instance v1\n2 1\n0.5\n0.5\n-1\n");        // edges < 0
  expect_parse_error("suu-instance v1\n2 1\n0.5\n0.5\n1\n0 7\n");    // v >= n
  expect_parse_error("suu-instance v1\n2 1\n0.5\n0.5\n1\n-1 1\n");   // u < 0
  expect_parse_error("suu-instance v1\n2 1\n0.5\n0.5\n1\n0 0\n");    // self-loop
  expect_parse_error("suu-instance v1\n2 1\n0.5\n0.5\n2\n0 1\n0 1\n");  // dup
  expect_parse_error("suu-instance v1\n2 1\n0.5\n0.5\n2\n0 1\n1 0\n");  // cycle
  expect_parse_error("suu-instance v1\n2 1\n0.5\n0.5\n1\n");  // truncated edge
}

TEST(InstanceIo, ReadLimitsBoundAllocations) {
  // A hostile header must be rejected by the n*m product guard before the
  // probability matrix is allocated.
  std::stringstream huge("suu-instance v1\n16777215 16777215\n");
  EXPECT_THROW(read_instance(huge), ParseError);

  ReadLimits tight;
  tight.max_jobs = 4;
  tight.max_machines = 4;
  tight.max_cells = 8;
  tight.max_edges = 2;
  std::stringstream too_many_jobs("suu-instance v1\n5 1\n");
  EXPECT_THROW(read_instance(too_many_jobs, tight), ParseError);
  std::stringstream too_many_cells("suu-instance v1\n4 3\n");
  EXPECT_THROW(read_instance(too_many_cells, tight), ParseError);
  std::stringstream too_many_edges(
      "suu-instance v1\n4 2\n.5 .5\n.5 .5\n.5 .5\n.5 .5\n3\n0 1\n1 2\n2 3\n");
  EXPECT_THROW(read_instance(too_many_edges, tight), ParseError);
  // Within the limits everything still parses.
  std::stringstream ok(
      "suu-instance v1\n4 2\n.5 .5\n.5 .5\n.5 .5\n.5 .5\n2\n0 1\n1 2\n");
  EXPECT_EQ(read_instance(ok, tight).num_jobs(), 4);
}

TEST(InstanceIo, FileRoundTrip) {
  util::Rng rng(4);
  const Instance inst =
      make_independent(5, 3, MachineModel::sparse(0.5, 0.3, 0.9), rng);
  const std::string path = "/tmp/suu_io_test_instance.txt";
  save_instance(path, inst);
  const Instance back = load_instance(path);
  expect_same(inst, back);
  std::remove(path.c_str());
}

TEST(InstanceIo, MissingFileThrows) {
  EXPECT_THROW(load_instance("/nonexistent/dir/x.txt"), util::CheckError);
}

}  // namespace
}  // namespace suu::core
