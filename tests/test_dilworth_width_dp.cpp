#include <gtest/gtest.h>

#include "algos/exact_dp.hpp"
#include "algos/exact_width_dp.hpp"
#include "chains/dilworth.hpp"
#include "core/generators.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace suu {
namespace {

// ---- Dilworth / min chain cover ----

TEST(Dilworth, EmptyDagWidthIsN) {
  core::Dag d(5);
  const chains::ChainCover c = chains::min_chain_cover(d);
  EXPECT_EQ(c.width, 5);
  EXPECT_EQ(c.chains.size(), 5u);
}

TEST(Dilworth, SingleChainWidthOne) {
  const core::Dag d = core::make_chain_dag({6});
  EXPECT_EQ(chains::dag_width(d), 1);
}

TEST(Dilworth, DisjointChains) {
  const core::Dag d = core::make_chain_dag({3, 2, 4});
  const chains::ChainCover c = chains::min_chain_cover(d);
  EXPECT_EQ(c.width, 3);
}

TEST(Dilworth, DiamondWidthTwo) {
  // 0 -> {1, 2} -> 3: the antichain {1, 2} has size 2.
  core::Dag d(4);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(1, 3);
  d.add_edge(2, 3);
  EXPECT_EQ(chains::dag_width(d), 2);
}

TEST(Dilworth, TransitiveClosureMatters) {
  // Path 0 -> 1 -> 2 plus shortcut 0 -> 2: still width 1 (total order).
  core::Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  d.add_edge(0, 2);
  EXPECT_EQ(chains::dag_width(d), 1);
}

TEST(Dilworth, StarWidth) {
  core::Dag d(5);
  for (int v = 1; v < 5; ++v) d.add_edge(0, v);
  EXPECT_EQ(chains::dag_width(d), 4);  // the four leaves
}

TEST(Dilworth, ChainsArePosetChainsAndCover) {
  util::Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    core::Instance inst = core::make_out_forest(
        14, 2, 0.2, 3, core::MachineModel::uniform(0.3, 0.9), rng);
    const chains::ChainCover c = chains::min_chain_cover(inst.dag());
    std::vector<int> seen(14, 0);
    // Reachability for verification.
    const auto reaches = [&](int u, int v) {
      std::vector<int> stack{u};
      std::vector<char> vis(14, 0);
      while (!stack.empty()) {
        const int x = stack.back();
        stack.pop_back();
        if (x == v) return true;
        for (const int s : inst.dag().succs(x)) {
          if (!vis[static_cast<std::size_t>(s)]) {
            vis[static_cast<std::size_t>(s)] = 1;
            stack.push_back(s);
          }
        }
      }
      return false;
    };
    for (const auto& chain : c.chains) {
      for (std::size_t k = 0; k + 1 < chain.size(); ++k) {
        EXPECT_TRUE(reaches(chain[k], chain[k + 1]))
            << chain[k] << " !-> " << chain[k + 1];
      }
      for (const int v : chain) ++seen[static_cast<std::size_t>(v)];
    }
    for (const int s : seen) EXPECT_EQ(s, 1);
  }
}

// ---- Width-parameterized exact DP ----

TEST(WidthDp, SingleJobGeometric) {
  core::Instance inst = core::Instance::independent(1, 1, {0.5});
  algos::WidthExactSolver solver(inst);
  EXPECT_EQ(solver.width(), 1);
  EXPECT_NEAR(solver.expected_makespan(), 2.0, 1e-9);
}

TEST(WidthDp, ChainSequentialClosedForm) {
  core::Instance inst(3, 1, {0.5, 0.5, 0.5}, core::make_chain_dag({3}));
  algos::WidthExactSolver solver(inst);
  EXPECT_EQ(solver.width(), 1);
  EXPECT_NEAR(solver.expected_makespan(), 6.0, 1e-9);
  EXPECT_EQ(solver.num_states(), 4);
}

class WidthDpAgreesWithSubsetDp : public ::testing::TestWithParam<int> {};

TEST_P(WidthDpAgreesWithSubsetDp, OnRandomSmallDags) {
  util::Rng rng(6000 + GetParam());
  const int kind = GetParam() % 3;
  core::Instance inst =
      kind == 0 ? core::make_independent(
                      5, 2, core::MachineModel::uniform(0.2, 0.9), rng)
      : kind == 1 ? core::make_chains(
                        2, 2, 3, 2, core::MachineModel::uniform(0.2, 0.9),
                        rng)
                  : core::make_out_forest(
                        6, 2, 0.3, 2,
                        core::MachineModel::uniform(0.2, 0.9), rng);
  if (inst.num_jobs() > 8) GTEST_SKIP();
  const algos::ExactSolver subset(inst);
  const algos::WidthExactSolver width(inst);
  EXPECT_NEAR(width.expected_makespan(), subset.expected_makespan(), 1e-7)
      << "kind " << kind;
}

INSTANTIATE_TEST_SUITE_P(Sweep, WidthDpAgreesWithSubsetDp,
                         ::testing::Range(0, 12));

TEST(WidthDp, ScalesToLongChainsWhereSubsetDpCannot) {
  // 2 chains of length 10 => n = 20 jobs (2^20 subsets would be heavy;
  // width DP has 11 * 11 = 121 states).
  util::Rng rng(7);
  const auto q = core::gen_q(20, 2, core::MachineModel::uniform(0.3, 0.8),
                             rng);
  core::Instance inst(20, 2, q, core::make_chain_dag({10, 10}));
  algos::WidthExactSolver solver(inst);
  EXPECT_EQ(solver.width(), 2);
  EXPECT_EQ(solver.num_states(), 121);
  EXPECT_GT(solver.expected_makespan(), 10.0);  // >= 10 sequential steps
  EXPECT_LT(solver.expected_makespan(), 200.0);
}

TEST(WidthDp, OptimalPolicyMatchesValueBySimulation) {
  util::Rng rng(9);
  const auto q = core::gen_q(8, 2, core::MachineModel::uniform(0.3, 0.85),
                             rng);
  core::Instance inst(8, 2, q, core::make_chain_dag({4, 4}));
  auto solver = std::make_shared<const algos::WidthExactSolver>(inst);
  sim::EstimateOptions opt;
  opt.replications = 20000;
  opt.seed = 3;
  opt.strict_eligibility = true;
  const util::Estimate e = sim::estimate_makespan(
      inst, [solver] { return std::make_unique<algos::WidthOptPolicy>(
                solver); },
      opt);
  EXPECT_NEAR(e.mean, solver->expected_makespan(), 5 * e.ci95_half + 0.05);
}

TEST(WidthDp, StateGuardRejectsHugeWidth) {
  // Width 20 independent jobs: 2^20 states exceeds a tiny cap.
  util::Rng rng(11);
  core::Instance inst = core::make_independent(
      20, 2, core::MachineModel::uniform(0.3, 0.9), rng);
  algos::WidthExactSolver::Options opt;
  opt.max_states = 1000;
  EXPECT_THROW(algos::WidthExactSolver(inst, opt), util::CheckError);
}

TEST(WidthDp, WidthOptNeverWorseThanChainBaselines) {
  util::Rng rng(13);
  const auto q = core::gen_q(10, 2, core::MachineModel::uniform(0.3, 0.9),
                             rng);
  core::Instance inst(10, 2, q, core::make_chain_dag({5, 5}));
  auto solver = std::make_shared<const algos::WidthExactSolver>(inst);
  sim::EstimateOptions opt;
  opt.replications = 4000;
  opt.seed = 5;
  const util::Estimate opt_e = sim::estimate_makespan(
      inst, [solver] { return std::make_unique<algos::WidthOptPolicy>(
                solver); },
      opt);
  EXPECT_NEAR(opt_e.mean, solver->expected_makespan(),
              5 * opt_e.ci95_half + 0.1);
}

}  // namespace
}  // namespace suu
