// suu::client coverage — ShardCoordinator fan-out, retry/failover,
// deadlines, and the merge's byte-identity guarantees, driven end-to-end
// against real in-process TcpServers with deterministic fault injection
// (service/fault.hpp server-side, client/flaky.hpp client-side).
//
// The acceptance paths live here: a sharded estimate merged over >= 3
// backends is byte-identical to the single-server streamed rows and plain
// estimate result — including when a backend times out, refuses
// connections, truncates a reply mid-line, or (via a spawned suu_serve
// child, see MidStreamProcessExit) exits mid-stream. Every retry path is
// reached by a deterministic fault, not by luck.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "client/backoff.hpp"
#include "client/coordinator.hpp"
#include "client/flaky.hpp"
#include "client/ring.hpp"
#include "client/spawn.hpp"
#include "client/transport.hpp"
#include "core/generators.hpp"
#include "core/io.hpp"
#include "obs/spanlog.hpp"
#include "service/engine.hpp"
#include "service/fault.hpp"
#include "service/json.hpp"
#include "service/transport.hpp"
#include "util/rng.hpp"

namespace suu::client {
namespace {

// ---------------------------------------------------------------- helpers

std::string instance_text(int n, int m, std::uint64_t seed) {
  util::Rng rng(seed);
  const core::Instance inst = core::make_independent(
      n, m, core::MachineModel::uniform(0.3, 0.95), rng);
  std::ostringstream os;
  core::write_instance(os, inst);
  return os.str();
}

/// One in-process backend: engine + TCP listener + accept thread.
struct TestBackend {
  service::Engine engine;
  service::TcpServer server;
  std::thread thread;

  explicit TestBackend(const service::Engine::Config& cfg = {},
                       const service::FaultSpec& fault = {})
      : engine(cfg),
        server(engine, 0, fault),
        thread([this] { server.run(); }) {}
  ~TestBackend() {
    server.stop();
    thread.join();
  }
  std::uint16_t port() const { return server.port(); }
};

/// Reference bytes from a single local engine: the plain estimate result
/// object and the concatenated streamed shard rows for the same job.
struct Reference {
  std::string result;
  std::string table;
};

Reference reference_for(const EstimateJob& job, int shards) {
  service::Engine engine;
  std::string params = "\"instance\":";
  service::json_append_quoted(params, job.instance_text);
  params += ",\"solver\":";
  service::json_append_quoted(params, job.solver);
  params += ",\"seed\":" + std::to_string(job.seed);
  params += ",\"replications\":" + std::to_string(job.replications);
  if (job.lower_bound) params += ",\"lower_bound\":true";

  Reference ref;
  ref.result = extract_object(
      engine.handle(R"({"id":1,"method":"estimate","params":{)" + params +
                    "}}"),
      "result");
  const std::string streamed = engine.handle(
      R"({"id":2,"method":"estimate","params":{)" + params +
      ",\"stream\":true,\"shards\":" + std::to_string(shards) + "}}");
  std::istringstream lines(streamed);
  std::string line;
  int rows = 0;
  while (std::getline(lines, line)) {
    const std::string row = extract_object(line, "shard");
    if (!row.empty()) {
      ref.table += row;
      ref.table.push_back('\n');
      ++rows;
    }
  }
  EXPECT_EQ(rows, shards);
  EXPECT_FALSE(ref.result.empty());
  return ref;
}

EstimateJob small_job() {
  EstimateJob job;
  job.instance_text = instance_text(8, 3, 21);
  job.solver = "auto";
  job.seed = 5;
  job.replications = 60;
  job.lower_bound = true;
  return job;
}

FanoutOptions fast_options(int shards) {
  FanoutOptions opt;
  opt.shards = shards;
  opt.backoff.base_ms = 2;
  opt.backoff.max_ms = 10;
  return opt;
}

// ------------------------------------------------------------- unit bits

TEST(Backoff, DeterministicBoundedAndCapped) {
  const BackoffPolicy p{10, 500, 4};
  for (int attempt = 1; attempt <= 10; ++attempt) {
    const int a = p.delay_ms(attempt, 42);
    const int b = p.delay_ms(attempt, 42);
    EXPECT_EQ(a, b) << "jitter must be deterministic per (seed, attempt)";
    long long ceiling = 10;
    for (int i = 1; i < attempt && ceiling < 500; ++i) ceiling *= 2;
    if (ceiling > 500) ceiling = 500;
    EXPECT_GE(a, ceiling / 2) << attempt;
    EXPECT_LE(a, ceiling) << attempt;
  }
  // Distinct seeds de-synchronize (statistically: at least one differs).
  bool any_diff = false;
  for (int attempt = 1; attempt <= 5; ++attempt) {
    any_diff = any_diff || p.delay_ms(attempt, 1) != p.delay_ms(attempt, 2);
  }
  EXPECT_TRUE(any_diff);
  EXPECT_EQ(p.delay_ms(0, 7), 0);
}

TEST(Ring, RouteIsStickyAndRebalanceMovesOnlyOrphans) {
  HashRing ring;
  ring.add(0);
  ring.add(1);
  ring.add(2);
  std::vector<std::size_t> before;
  for (std::uint64_t k = 0; k < 200; ++k) before.push_back(ring.route(k));
  // Same ring, same answers.
  for (std::uint64_t k = 0; k < 200; ++k) {
    EXPECT_EQ(ring.route(k), before[static_cast<std::size_t>(k)]);
  }
  // All three backends own something.
  std::set<std::size_t> owners(before.begin(), before.end());
  EXPECT_EQ(owners.size(), 3u);
  // Removing backend 1 moves ONLY its keys.
  ring.remove(1);
  for (std::uint64_t k = 0; k < 200; ++k) {
    const std::size_t now = ring.route(k);
    EXPECT_NE(now, 1u);
    if (before[static_cast<std::size_t>(k)] != 1) {
      EXPECT_EQ(now, before[static_cast<std::size_t>(k)]) << k;
    }
  }
  // Re-adding restores the original layout (placement is deterministic).
  ring.add(1);
  for (std::uint64_t k = 0; k < 200; ++k) {
    EXPECT_EQ(ring.route(k), before[static_cast<std::size_t>(k)]);
  }
}

TEST(ExtractObject, BalancedScanSkipsStringsAndNesting) {
  const std::string line =
      R"({"id":1,"ok":true,"result":{"seq":0,"shard":{"a":{"b":"}{"},"c":[1,2]},"capped":0}})";
  EXPECT_EQ(extract_object(line, "shard"), R"({"a":{"b":"}{"},"c":[1,2]})");
  EXPECT_EQ(extract_object(line, "result"),
            R"({"seq":0,"shard":{"a":{"b":"}{"},"c":[1,2]},"capped":0})");
  EXPECT_EQ(extract_object(line, "missing"), "");
  EXPECT_EQ(extract_object(R"({"shard":17})", "shard"), "");  // not an object
  EXPECT_EQ(extract_object(R"({"shard":{"x":"\"}\""}})", "shard"),
            R"({"x":"\"}\""})");
}

// --------------------------------------------------- end-to-end, healthy

TEST(Fanout, ByteIdenticalAcrossThreeBackends) {
  const EstimateJob job = small_job();
  const int kShards = 6;
  const Reference ref = reference_for(job, kShards);

  TestBackend b0, b1, b2;
  ShardCoordinator coord(
      {Backend{b0.port()}, Backend{b1.port()}, Backend{b2.port()}},
      fast_options(kShards));
  const FanoutResult res = coord.run(job);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.table_json, ref.table);
  EXPECT_EQ(res.result_json, ref.result);
  EXPECT_EQ(res.attempts, kShards);
  EXPECT_EQ(res.failovers, 0);
  EXPECT_LT(res.recovery_ms, 0.0) << "no failure -> no recovery latency";
  int served = 0;
  int used = 0;
  for (const BackendReport& rep : res.backends) {
    served += rep.shards_served;
    used += rep.shards_served > 0 ? 1 : 0;
    EXPECT_TRUE(rep.alive);
    EXPECT_FALSE(rep.ejected);
  }
  EXPECT_EQ(served, kShards);
  EXPECT_GT(used, 1) << "affine routing should still use several backends";
}

TEST(Fanout, TraceIdPropagatesAcrossThreeBackendFanout) {
  // A client-set EstimateJob::trace must ride the wire envelope to every
  // backend, land in the span log there, and stay byte-invisible in the
  // merged result. The in-process backends share this process's global
  // SpanLog, so one snapshot sees all backend-side spans.
  obs::SpanLog::global().clear();
  EstimateJob job = small_job();
  job.trace = "trace-e2e-fanout";
  const int kShards = 6;
  const Reference ref = reference_for(job, kShards);

  obs::SpanLog::global().clear();  // keep only the fan-out's spans
  TestBackend b0, b1, b2;
  ShardCoordinator coord(
      {Backend{b0.port()}, Backend{b1.port()}, Backend{b2.port()}},
      fast_options(kShards));
  const FanoutResult res = coord.run(job);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.result_json, ref.result) << "trace id leaked into bytes";
  EXPECT_EQ(res.table_json, ref.table);

  // Backend-side spans tagged with the client's trace id: the open and the
  // per-shard estimates, each with its instrumented phases. A backend
  // records a request's spans after writing its reply, so the merged
  // result can land a beat before the last span does — poll briefly.
  std::vector<obs::Span> spans;
  for (int tries = 0; tries < 2000; ++tries) {
    spans = obs::SpanLog::global().snapshot("trace-e2e-fanout");
    int done = 0;
    for (const obs::Span& s : spans) {
      if (s.name == "request:estimate") ++done;
    }
    if (done >= kShards) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(spans.empty());
  std::set<std::string> names;
  for (const obs::Span& s : spans) names.insert(s.name);
  EXPECT_TRUE(names.count("request:open_instance")) << "open not traced";
  EXPECT_TRUE(names.count("request:estimate")) << "estimates not traced";
  EXPECT_TRUE(names.count("solve"));
  EXPECT_TRUE(names.count("respond"));
  int estimates = 0;
  for (const obs::Span& s : spans) {
    if (s.name == "request:estimate") ++estimates;
  }
  EXPECT_EQ(estimates, kShards) << "every shard request should carry the id";

  // The `trace` wire method on any backend returns those spans too.
  const std::string resp = b0.engine.handle(
      R"({"id":9,"method":"trace","params":{"trace":"trace-e2e-fanout"}})");
  EXPECT_NE(resp.find("\"trace\":\"trace-e2e-fanout\""), std::string::npos);
  EXPECT_NE(resp.find("request:estimate"), std::string::npos);
}

TEST(Fanout, SingleBackendDegradationSameBytes) {
  const EstimateJob job = small_job();
  const int kShards = 4;
  const Reference ref = reference_for(job, kShards);
  TestBackend b0;
  ShardCoordinator coord({Backend{b0.port()}}, fast_options(kShards));
  const FanoutResult res = coord.run(job);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.table_json, ref.table);
  EXPECT_EQ(res.result_json, ref.result);
  EXPECT_EQ(res.backends[0].shards_served, kShards);
}

TEST(Fanout, OutOfOrderRepliesMergeInShardOrder) {
  // Backend 0 delays every reply: its shards finish LAST even though they
  // are the lowest-numbered ones routed to it. The merge must order by
  // shard index, not completion time.
  const EstimateJob job = small_job();
  const int kShards = 6;
  const Reference ref = reference_for(job, kShards);
  service::FaultSpec slow;
  slow.delay_ms = 30;
  TestBackend b0({}, slow), b1, b2;
  ShardCoordinator coord(
      {Backend{b0.port()}, Backend{b1.port()}, Backend{b2.port()}},
      fast_options(kShards));
  const FanoutResult res = coord.run(job);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.table_json, ref.table);
  EXPECT_EQ(res.result_json, ref.result);
  EXPECT_EQ(res.failovers, 0) << "slow is not dead";
}

// ------------------------------------------------------- failure paths

TEST(FanoutFault, RequestTimeoutEjectsAndFailsOver) {
  const EstimateJob job = small_job();
  const int kShards = 6;
  const Reference ref = reference_for(job, kShards);
  service::FaultSpec stall;
  stall.delay_ms = 500;  // every reply outlasts the request deadline
  TestBackend b0({}, stall), b1, b2;
  FanoutOptions opt = fast_options(kShards);
  opt.request_timeout_ms = 100;
  opt.probe_attempts = 1;  // its probe would stall too; don't retry long
  ShardCoordinator coord(
      {Backend{b0.port()}, Backend{b1.port()}, Backend{b2.port()}}, opt);
  const FanoutResult res = coord.run(job);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.table_json, ref.table);
  EXPECT_EQ(res.result_json, ref.result);
  EXPECT_TRUE(res.backends[0].ejected);
  EXPECT_GE(res.recovery_ms, 0.0);
  EXPECT_GE(res.failovers, 1);
  // No probe assertion: the survivors may legitimately finish the whole
  // grid before the ejected worker's first probe window opens.
}

TEST(FanoutFault, ConnectionRefusedEjectsAndFailsOver) {
  const EstimateJob job = small_job();
  const int kShards = 4;
  const Reference ref = reference_for(job, kShards);
  std::uint16_t dead_port = 0;
  {
    service::Engine engine;
    service::TcpServer listener(engine, 0);
    dead_port = listener.port();  // released when listener dies
  }
  TestBackend alive;
  FanoutOptions opt = fast_options(kShards);
  opt.probe_attempts = 1;
  ShardCoordinator coord({Backend{dead_port}, Backend{alive.port()}}, opt);
  const FanoutResult res = coord.run(job);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.table_json, ref.table);
  EXPECT_EQ(res.result_json, ref.result);
  EXPECT_TRUE(res.backends[0].ejected);
  EXPECT_FALSE(res.backends[0].alive);
  EXPECT_EQ(res.backends[1].shards_served, kShards);
}

TEST(FanoutFault, MidLineTruncationEjectsAndFailsOver) {
  const EstimateJob job = small_job();
  const int kShards = 6;
  const Reference ref = reference_for(job, kShards);
  service::FaultSpec trunc;
  trunc.truncate_line = 2;  // open reply survives; first estimate reply
                            // arrives half-written, then the line drops
  TestBackend b0({}, trunc), b1, b2;
  ShardCoordinator coord(
      {Backend{b0.port()}, Backend{b1.port()}, Backend{b2.port()}},
      fast_options(kShards));
  const FanoutResult res = coord.run(job);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.table_json, ref.table);
  EXPECT_EQ(res.result_json, ref.result);
  EXPECT_TRUE(res.backends[0].ejected);
  EXPECT_GE(res.recovery_ms, 0.0);
}

TEST(FanoutFault, SingleBackendParksShardsAndRecoversViaProbe) {
  // One backend, and its first connection garbles the first estimate
  // reply. The shard must park (empty ring), the probe must win
  // re-admission on a fresh connection, and the run must still produce
  // reference bytes — recovery with nowhere to fail over TO.
  const EstimateJob job = small_job();
  const int kShards = 3;
  const Reference ref = reference_for(job, kShards);
  TestBackend backend;
  FanoutOptions opt = fast_options(kShards);
  int connections = 0;
  opt.transport = [&backend, &connections](std::size_t,
                                           const Deadline&) {
    auto inner = TcpTransport::connect(backend.port(),
                                       Deadline::after_ms(2000));
    std::unique_ptr<Transport> t = std::move(inner);
    if (t && ++connections == 1) {
      FlakySpec spec;
      spec.garble_read_at = 2;  // reply 1 = open_instance; reply 2 = the
                                // first estimate, cut mid-line
      t = std::make_unique<FlakyTransport>(std::move(t), spec);
    }
    return t;
  };
  ShardCoordinator coord({Backend{backend.port()}}, opt);
  const FanoutResult res = coord.run(job);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.table_json, ref.table);
  EXPECT_EQ(res.result_json, ref.result);
  EXPECT_TRUE(res.backends[0].ejected);
  EXPECT_TRUE(res.backends[0].readmitted);
  EXPECT_GT(res.probes, 0);
  EXPECT_GE(res.recovery_ms, 0.0);
}

TEST(FanoutFault, AllBackendsDownFailsCleanly) {
  const EstimateJob job = small_job();
  std::uint16_t dead = 0;
  {
    service::Engine engine;
    service::TcpServer listener(engine, 0);
    dead = listener.port();
  }
  FanoutOptions opt = fast_options(2);
  opt.probe_attempts = 1;
  ShardCoordinator coord({Backend{dead}}, opt);
  const FanoutResult res = coord.run(job);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.error.empty());
}

TEST(FanoutFault, FatalServiceErrorAbortsInsteadOfRetrying) {
  // An unknown solver is rejected as fatal by classification: the run
  // must abort with the service's message, not spin through retries.
  EstimateJob job = small_job();
  job.solver = "no-such-solver";
  TestBackend backend;
  ShardCoordinator coord({Backend{backend.port()}}, fast_options(2));
  const FanoutResult res = coord.run(job);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("unknown_solver"), std::string::npos)
      << res.error;
  EXPECT_LE(res.attempts, 2) << "fatal errors must not be retried";
}

TEST(FanoutFault, ExpiredHandleReopensTransparently) {
  // Two coordinator "backends" are two connections into the SAME engine,
  // which only keeps one open handle: each open_instance expires the
  // other connection's session, so estimates race into unknown_handle
  // and must recover by reopening. Backend 1's replies are delayed so
  // its open lands while backend 0 is still mid-grid.
  EstimateJob job = small_job();
  job.replications = 1600;  // ~20ms+ per shard: backend 0 is still busy
                            // when backend 1's delayed open arrives
  const int kShards = 8;
  const Reference ref = reference_for(job, kShards);

  service::Engine::Config cfg;
  cfg.max_open_handles = 1;
  service::Engine engine(cfg);
  service::TcpServer s0(engine, 0);
  service::FaultSpec slow;
  slow.delay_ms = 30;
  service::TcpServer s1(engine, 0, slow);
  std::thread t0([&] { s0.run(); });
  std::thread t1([&] { s1.run(); });

  ShardCoordinator coord({Backend{s0.port()}, Backend{s1.port()}},
                         fast_options(kShards));
  const FanoutResult res = coord.run(job);
  s0.stop();
  s1.stop();
  t0.join();
  t1.join();
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.table_json, ref.table);
  EXPECT_EQ(res.result_json, ref.result);
  EXPECT_GE(res.reopens, 1);
  EXPECT_EQ(res.failovers, 0) << "reopen is not a failover";
}

TEST(FanoutFault, MidStreamProcessExit) {
  // The real thing: a spawned suu_serve child _exits after two reply
  // lines with shards still queued on it. Needs the daemon binary; the
  // ctest entry exports SUU_SERVE_BIN.
  const char* bin = std::getenv("SUU_SERVE_BIN");
  if (bin == nullptr || *bin == '\0') {
    GTEST_SKIP() << "SUU_SERVE_BIN not set";
  }
  // This instance/shard grid routes several shards to backend 0, so the
  // crash fires with work still queued on it (a backend that drew exactly
  // one shard would finish before its second reply line).
  EstimateJob job;
  job.instance_text = instance_text(12, 4, 42);
  job.seed = 5;
  job.replications = 120;
  job.lower_bound = true;
  const int kShards = 8;
  const Reference ref = reference_for(job, kShards);
  LocalDaemon d0(bin, "exit_after_lines=2");
  LocalDaemon d1(bin), d2(bin);
  ASSERT_TRUE(d0.ok() && d1.ok() && d2.ok());
  FanoutOptions opt = fast_options(kShards);
  opt.probe_attempts = 1;  // d0 is gone for good; probe once and move on
  ShardCoordinator coord(
      {Backend{d0.port()}, Backend{d1.port()}, Backend{d2.port()}}, opt);
  const FanoutResult res = coord.run(job);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.table_json, ref.table);
  EXPECT_EQ(res.result_json, ref.result);
  EXPECT_TRUE(res.backends[0].ejected);
  EXPECT_FALSE(res.backends[0].alive);
  EXPECT_GE(res.recovery_ms, 0.0);
}

}  // namespace
}  // namespace suu::client
