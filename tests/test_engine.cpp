#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/generators.hpp"
#include "util/check.hpp"

namespace suu::sim {
namespace {

/// Assigns every machine to the lowest-index eligible job.
class FirstEligiblePolicy : public Policy {
 public:
  std::string name() const override { return "first-eligible"; }
  sched::Assignment decide(const ExecState& state) override {
    sched::Assignment a(
        static_cast<std::size_t>(state.instance().num_machines()),
        sched::kIdle);
    for (int j = 0; j < state.instance().num_jobs(); ++j) {
      if (state.eligible(j)) {
        std::fill(a.begin(), a.end(), j);
        break;
      }
    }
    return a;
  }
};

/// Machine i -> job (i + t) mod n: every job is served infinitely often,
/// including ineligible ones (exercising the idle-equivalence rule).
class DiagonalPolicy : public Policy {
 public:
  std::string name() const override { return "diagonal"; }
  sched::Assignment decide(const ExecState& state) override {
    const int m = state.instance().num_machines();
    const int n = state.instance().num_jobs();
    sched::Assignment a(static_cast<std::size_t>(m), sched::kIdle);
    for (int i = 0; i < m; ++i) {
      a[static_cast<std::size_t>(i)] =
          static_cast<int>((i + state.now()) % n);
    }
    return a;
  }
};

TEST(Engine, DeterministicJobCompletesInOneStep) {
  core::Instance inst = core::Instance::independent(1, 1, {0.0});
  FirstEligiblePolicy p;
  ExecConfig cfg;
  const ExecResult r = execute(inst, p, cfg);
  EXPECT_EQ(r.makespan, 1);
  EXPECT_FALSE(r.capped);
  EXPECT_EQ(r.completion_time[0], 1);
}

TEST(Engine, GeometricSingleJobMean) {
  // One job, one machine, q = 0.5: E[T] = 1/(1-q) = 2.
  core::Instance inst = core::Instance::independent(1, 1, {0.5});
  EstimateOptions opt;
  opt.replications = 20000;
  opt.seed = 42;
  const util::Estimate e = estimate_makespan(
      inst, [] { return std::make_unique<FirstEligiblePolicy>(); }, opt);
  EXPECT_NEAR(e.mean, 2.0, 5 * e.ci95_half + 0.02);
}

TEST(Engine, MultipleMachinesMultiplyFailures) {
  // One job, two machines each q = 0.5 ganged: per-step fail 0.25,
  // E[T] = 1/0.75 = 4/3.
  core::Instance inst = core::Instance::independent(1, 2, {0.5, 0.5});
  EstimateOptions opt;
  opt.replications = 20000;
  opt.seed = 7;
  const util::Estimate e = estimate_makespan(
      inst, [] { return std::make_unique<FirstEligiblePolicy>(); }, opt);
  EXPECT_NEAR(e.mean, 4.0 / 3.0, 5 * e.ci95_half + 0.02);
}

TEST(Engine, DeferredSemanticsSameClosedForm) {
  core::Instance inst = core::Instance::independent(1, 1, {0.5});
  EstimateOptions opt;
  opt.replications = 20000;
  opt.seed = 42;
  opt.semantics = Semantics::Deferred;
  const util::Estimate e = estimate_makespan(
      inst, [] { return std::make_unique<FirstEligiblePolicy>(); }, opt);
  EXPECT_NEAR(e.mean, 2.0, 5 * e.ci95_half + 0.02);
}

class SemanticsEquivalence : public ::testing::TestWithParam<int> {};

// Theorem 10: SUU (coin flips) and SUU* (deferred r_j) induce the same
// makespan distribution for any schedule.
TEST_P(SemanticsEquivalence, MeansAgree) {
  util::Rng rng(900 + GetParam());
  core::Instance inst = core::make_independent(
      4, 3, core::MachineModel::uniform(0.3, 0.95), rng);
  EstimateOptions a, b;
  a.replications = b.replications = 12000;
  a.seed = b.seed = 1234 + GetParam();
  a.semantics = Semantics::CoinFlips;
  b.semantics = Semantics::Deferred;
  auto factory = [] { return std::make_unique<DiagonalPolicy>(); };
  const util::Estimate ea = estimate_makespan(inst, factory, a);
  const util::Estimate eb = estimate_makespan(inst, factory, b);
  EXPECT_NEAR(ea.mean, eb.mean, 5 * (ea.ci95_half + eb.ci95_half) + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SemanticsEquivalence, ::testing::Range(0, 6));

/// Machine i -> job i unconditionally (even when ineligible).
class FixedDiagonalPolicy : public Policy {
 public:
  std::string name() const override { return "fixed-diagonal"; }
  sched::Assignment decide(const ExecState& state) override {
    const int m = state.instance().num_machines();
    sched::Assignment a(static_cast<std::size_t>(m), sched::kIdle);
    for (int i = 0; i < m && i < state.instance().num_jobs(); ++i) {
      a[static_cast<std::size_t>(i)] = i;
    }
    return a;
  }
};

TEST(Engine, PrecedenceBlocksExecution) {
  // 0 -> 1; machine1 targets job1 (blocked until 0 completes). With q = 0
  // job 0 completes at step 1, then job 1 at step 2.
  core::Dag d(2);
  d.add_edge(0, 1);
  core::Instance inst(2, 2, {0.0, 1.0, 1.0, 0.0}, std::move(d));
  FixedDiagonalPolicy p;
  ExecConfig cfg;
  const ExecResult r = execute(inst, p, cfg);
  EXPECT_EQ(r.completion_time[0], 1);
  EXPECT_EQ(r.completion_time[1], 2);
  EXPECT_EQ(r.makespan, 2);
}

TEST(Engine, StrictEligibilityThrows) {
  core::Dag d(2);
  d.add_edge(0, 1);
  core::Instance inst(2, 2, {0.5, 0.5, 0.5, 0.5}, std::move(d));
  FixedDiagonalPolicy p;
  ExecConfig cfg;
  cfg.strict_eligibility = true;
  EXPECT_THROW(execute(inst, p, cfg), util::CheckError);
}

TEST(Engine, NonStrictTreatsIneligibleAsIdle) {
  core::Dag d(2);
  d.add_edge(0, 1);
  core::Instance inst(2, 2, {0.0, 1.0, 0.0, 0.0}, std::move(d));
  FixedDiagonalPolicy p;
  ExecConfig cfg;
  EXPECT_NO_THROW(execute(inst, p, cfg));
}

TEST(Engine, StepCapReturnsCapped) {
  // Machine never works on the job (q = 1 on the assigned machine ->
  // effectively no capable work done by this policy's choice).
  core::Instance inst = core::Instance::independent(1, 1, {0.9999});
  FirstEligiblePolicy p;
  ExecConfig cfg;
  cfg.step_cap = 3;
  cfg.seed = 5;
  // With q=0.9999 the job survives 3 steps with probability ~0.9997.
  const ExecResult r = execute(inst, p, cfg);
  if (r.capped) {
    EXPECT_EQ(r.makespan, 3);
    EXPECT_EQ(r.completion_time[0], -1);
  }
}

TEST(Engine, EstimateThrowsWhenCapped) {
  core::Instance inst = core::Instance::independent(1, 1, {0.99});
  EstimateOptions opt;
  opt.replications = 50;
  opt.step_cap = 1;
  EXPECT_THROW(
      estimate_makespan(
          inst, [] { return std::make_unique<FirstEligiblePolicy>(); }, opt),
      util::CheckError);
}

TEST(Engine, BadAssignmentSizeThrows) {
  class BadPolicy : public Policy {
   public:
    std::string name() const override { return "bad"; }
    sched::Assignment decide(const ExecState&) override { return {0}; }
  };
  core::Instance inst = core::Instance::independent(1, 2, {0.5, 0.5});
  BadPolicy p;
  ExecConfig cfg;
  EXPECT_THROW(execute(inst, p, cfg), util::CheckError);
}

TEST(Engine, UnknownJobThrows) {
  class BadPolicy : public Policy {
   public:
    std::string name() const override { return "bad"; }
    sched::Assignment decide(const ExecState&) override { return {7}; }
  };
  core::Instance inst = core::Instance::independent(1, 1, {0.5});
  BadPolicy p;
  ExecConfig cfg;
  EXPECT_THROW(execute(inst, p, cfg), util::CheckError);
}

TEST(Engine, SeedsReproduce) {
  core::Instance inst = core::Instance::independent(3, 2,
                                                    {0.5, 0.6, 0.7, 0.8,
                                                     0.4, 0.9});
  FirstEligiblePolicy p1, p2;
  ExecConfig cfg;
  cfg.seed = 77;
  const ExecResult a = execute(inst, p1, cfg);
  const ExecResult b = execute(inst, p2, cfg);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.completion_time, b.completion_time);
}

TEST(Engine, EstimateThreadCountInvariant) {
  core::Instance inst = core::Instance::independent(2, 2,
                                                    {0.5, 0.7, 0.6, 0.4});
  EstimateOptions o1, o4;
  o1.replications = o4.replications = 500;
  o1.seed = o4.seed = 31;
  o1.threads = 1;
  o4.threads = 4;
  auto factory = [] { return std::make_unique<FirstEligiblePolicy>(); };
  const util::Estimate e1 = estimate_makespan(inst, factory, o1);
  const util::Estimate e4 = estimate_makespan(inst, factory, o4);
  EXPECT_DOUBLE_EQ(e1.mean, e4.mean);
  EXPECT_DOUBLE_EQ(e1.max, e4.max);
}

TEST(Engine, CompletionTimesConsistent) {
  util::Rng rng(3);
  core::Instance inst = core::make_independent(
      5, 3, core::MachineModel::uniform(0.2, 0.8), rng);
  FirstEligiblePolicy p;
  ExecConfig cfg;
  cfg.seed = 9;
  const ExecResult r = execute(inst, p, cfg);
  std::int64_t latest = 0;
  for (const auto t : r.completion_time) {
    EXPECT_GE(t, 1);
    latest = std::max(latest, t);
  }
  EXPECT_EQ(r.makespan, latest);
}

TEST(ExecState, EligibleAndRemaining) {
  core::Dag d(3);
  d.add_edge(0, 1);
  core::Instance inst(3, 1, {0.5, 0.5, 0.5}, std::move(d));
  ExecState s(inst);
  EXPECT_EQ(s.num_remaining(), 3);
  EXPECT_TRUE(s.eligible(0));
  EXPECT_FALSE(s.eligible(1));
  EXPECT_TRUE(s.eligible(2));
  EXPECT_EQ(s.remaining_jobs().size(), 3u);
  EXPECT_EQ(s.eligible_jobs(), (std::vector<int>{0, 2}));
}

TEST(Engine, SamplerCollectsAllReps) {
  core::Instance inst = core::Instance::independent(1, 1, {0.5});
  EstimateOptions opt;
  opt.replications = 333;
  const util::Sampler s = sample_makespan(
      inst, [] { return std::make_unique<FirstEligiblePolicy>(); }, opt);
  EXPECT_EQ(s.count(), 333u);
  EXPECT_GE(s.quantile(0.0), 1.0);
}

}  // namespace
}  // namespace suu::sim
