#include "api/registry.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "algos/baselines.hpp"
#include "api/precompute_cache.hpp"
#include "core/generators.hpp"
#include "lp/simplex.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace suu::api {
namespace {

core::Instance independent_instance(int n, int m, std::uint64_t seed = 1) {
  util::Rng rng(seed);
  return core::make_independent(n, m, core::MachineModel::uniform(0.3, 0.9),
                                rng);
}

core::Instance chain_instance(std::uint64_t seed = 2) {
  util::Rng rng(seed);
  return core::make_chains(3, 2, 4, 3, core::MachineModel::uniform(0.3, 0.9),
                           rng);
}

core::Instance forest_instance(std::uint64_t seed = 3) {
  util::Rng rng(seed);
  return core::make_out_forest(12, 3, 0.2, 3,
                               core::MachineModel::uniform(0.3, 0.9), rng);
}

core::Instance general_dag_instance(std::uint64_t seed = 4) {
  // Diamond: 0 -> {1, 2} -> 3. Vertex 3 has two predecessors, so this is
  // neither chains nor an out-forest; vertex 0 has two successors, so it is
  // not an in-forest either.
  const int n = 4, m = 2;
  core::Dag dag(n);
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  dag.add_edge(2, 3);
  util::Rng rng(seed);
  return core::Instance(n, m, core::gen_q(n, m,
                                          core::MachineModel::uniform(0.3, 0.9),
                                          rng),
                        std::move(dag));
}

TEST(SolverRegistry, BuiltinsRegistered) {
  const SolverRegistry& reg = SolverRegistry::global();
  for (const char* name :
       {"suu-i", "suu-i-sem", "suu-i-obl", "suu-c", "suu-t", "exact-dp",
        "width-dp", "all-on-one", "round-robin", "best-machine",
        "adaptive-greedy", "greedy-lr"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_FALSE(reg.summary(name).empty()) << name;
  }
}

TEST(SolverRegistry, DispatchEmptyDagToSuuISem) {
  const core::Instance inst = independent_instance(6, 3);
  EXPECT_EQ(SolverRegistry::dispatch(inst), "suu-i-sem");
  const PreparedSolver s = solve_auto(inst);
  EXPECT_EQ(s.name, "suu-i-sem");
  EXPECT_EQ(s.factory()->name(), "suu-i-sem");
}

TEST(SolverRegistry, DispatchChainsToSuuC) {
  const core::Instance inst = chain_instance();
  ASSERT_TRUE(inst.dag().is_chains());
  EXPECT_EQ(SolverRegistry::dispatch(inst), "suu-c");
  const PreparedSolver s = solve_auto(inst);
  EXPECT_EQ(s.name, "suu-c");
  EXPECT_EQ(s.factory()->name(), "suu-c");
}

TEST(SolverRegistry, DispatchForestToSuuT) {
  const core::Instance inst = forest_instance();
  ASSERT_TRUE(inst.dag().is_out_forest());
  ASSERT_FALSE(inst.dag().is_chains());
  EXPECT_EQ(SolverRegistry::dispatch(inst), "suu-t");
  const PreparedSolver s = solve_auto(inst);
  EXPECT_EQ(s.name, "suu-t");
  EXPECT_EQ(s.factory()->name(), "suu-t");
}

TEST(SolverRegistry, DispatchGeneralDagToTrivialApproximation) {
  const core::Instance inst = general_dag_instance();
  ASSERT_FALSE(inst.dag().is_chains());
  ASSERT_FALSE(inst.dag().is_out_forest());
  ASSERT_FALSE(inst.dag().is_in_forest());
  EXPECT_EQ(SolverRegistry::dispatch(inst), "all-on-one");
  const PreparedSolver s = solve_auto(inst);
  EXPECT_EQ(s.name, "all-on-one");
}

TEST(SolverRegistry, UnknownNameThrows) {
  const core::Instance inst = independent_instance(4, 2);
  EXPECT_THROW(make_solver(inst, "no-such-solver"), util::CheckError);
  EXPECT_THROW(SolverRegistry::global().summary("no-such-solver"),
               util::CheckError);
}

TEST(SolverRegistry, StructureMismatchThrows) {
  const core::Instance forest = forest_instance();
  EXPECT_THROW(make_solver(forest, "suu-c"), util::CheckError);
  const core::Instance general = general_dag_instance();
  EXPECT_THROW(make_solver(general, "suu-t"), util::CheckError);
}

TEST(SolverRegistry, ReservedAndDuplicateNamesRejected) {
  SolverRegistry reg;
  auto noop = [](const core::Instance&, const SolverOptions&) {
    return sim::PolicyFactory(
        [] { return std::make_unique<algos::AllOnOnePolicy>(); });
  };
  EXPECT_THROW(reg.add("auto", noop, ""), util::CheckError);
  reg.add("custom", noop, "test entry");
  EXPECT_THROW(reg.add("custom", noop, "again"), util::CheckError);
  EXPECT_TRUE(reg.contains("custom"));
}

TEST(SolverRegistry, AliasSuuIResolvesToSem) {
  const core::Instance inst = independent_instance(5, 2);
  const PreparedSolver s = make_solver(inst, "suu-i");
  EXPECT_EQ(s.factory()->name(), "suu-i-sem");
}

TEST(SolverRegistry, PreparedFactoryIsReusable) {
  // The factory must mint independent policies: two executions from the
  // same prepared solver may not share mutable state.
  const core::Instance inst = independent_instance(6, 3);
  const PreparedSolver s = solve_auto(inst);
  sim::EstimateOptions opt;
  opt.replications = 20;
  opt.seed = 7;
  opt.threads = 1;
  const util::Estimate a = sim::estimate_makespan(inst, s.factory, opt);
  const util::Estimate b = sim::estimate_makespan(inst, s.factory, opt);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
}

TEST(PrecomputeCache, RepeatedPrepareHitsCache) {
  PrecomputeCache& cache = PrecomputeCache::global();
  cache.clear();
  cache.reset_stats();

  const core::Instance inst = independent_instance(7, 3, 11);
  const PreparedSolver first = make_solver(inst, "suu-i-sem");
  const PrecomputeCache::Stats after_first = cache.stats();
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_GE(after_first.misses, 1u);
  EXPECT_GE(after_first.size, 1u);

  const PreparedSolver second = make_solver(inst, "suu-i-sem");
  EXPECT_EQ(cache.stats().hits, 1u);
  // Cached factories mint policies exactly like fresh ones.
  sim::EstimateOptions opt;
  opt.replications = 10;
  opt.seed = 3;
  opt.threads = 1;
  EXPECT_DOUBLE_EQ(sim::estimate_makespan(inst, first.factory, opt).mean,
                   sim::estimate_makespan(inst, second.factory, opt).mean);
}

TEST(PrecomputeCache, DistinctInstancesAndOptionsMiss) {
  PrecomputeCache& cache = PrecomputeCache::global();
  cache.clear();
  cache.reset_stats();

  const core::Instance a = independent_instance(7, 3, 21);
  const core::Instance b = independent_instance(7, 3, 22);
  make_solver(a, "suu-i-sem");
  make_solver(b, "suu-i-sem");  // different fingerprint
  SolverOptions opt;
  opt.lp1.solver = rounding::Lp1Options::Solver::FrankWolfe;
  make_solver(a, "suu-i-sem", opt);  // different options
  const PrecomputeCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 3u);
}

TEST(PrecomputeCache, OptOutAndCallerStateBypass) {
  PrecomputeCache& cache = PrecomputeCache::global();
  cache.clear();
  cache.reset_stats();

  const core::Instance inst = independent_instance(7, 3, 31);
  SolverOptions no_cache;
  no_cache.reuse_cache = false;
  make_solver(inst, "suu-i-sem", no_cache);
  make_solver(inst, "suu-i-sem", no_cache);

  lp::WarmStart warm;
  SolverOptions warm_opt;
  warm_opt.lp1.warm = &warm;  // caller-owned state: never cached
  make_solver(inst, "suu-i-sem", warm_opt);

  const PrecomputeCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 0u);
  EXPECT_EQ(s.size, 0u);
}

TEST(PrecomputeCache, LruEvictionTouchesOnHit) {
  PrecomputeCache& cache = PrecomputeCache::global();
  cache.clear();
  cache.reset_stats();
  cache.set_capacity(2);

  const auto trivial = [] {
    return sim::PolicyFactory(
        [] { return std::make_unique<algos::AllOnOnePolicy>(); });
  };
  cache.get_or_prepare(1, trivial);  // miss        lru: [1]
  cache.get_or_prepare(2, trivial);  // miss        lru: [1, 2]
  cache.get_or_prepare(1, trivial);  // hit, touch  lru: [2, 1]
  cache.get_or_prepare(3, trivial);  // miss, evicts 2 (LRU) — not 1 (FIFO
                                     // would have evicted 1 here)
  cache.get_or_prepare(1, trivial);  // hit: 1 survived the eviction
  cache.get_or_prepare(2, trivial);  // miss: 2 is gone; evicts 3

  const PrecomputeCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_EQ(s.size, 2u);
  EXPECT_EQ(s.capacity, 2u);

  cache.clear();
  cache.set_capacity(256);  // restore the process-wide default
}

TEST(PrecomputeCache, CapacityShrinkEvictsLruFirst) {
  PrecomputeCache& cache = PrecomputeCache::global();
  cache.clear();
  cache.reset_stats();
  cache.set_capacity(4);

  const auto trivial = [] {
    return sim::PolicyFactory(
        [] { return std::make_unique<algos::AllOnOnePolicy>(); });
  };
  for (std::uint64_t k = 1; k <= 4; ++k) cache.get_or_prepare(k, trivial);
  cache.get_or_prepare(1, trivial);  // touch 1; lru order now [2, 3, 4, 1]
  cache.set_capacity(1);             // evicts 2, 3, 4 — keeps the hot key

  EXPECT_EQ(cache.stats().size, 1u);
  EXPECT_EQ(cache.stats().evictions, 3u);
  cache.get_or_prepare(1, trivial);
  EXPECT_EQ(cache.stats().hits, 2u);  // 1 is still resident

  cache.clear();
  cache.set_capacity(256);  // restore the process-wide default
}

TEST(SolverRegistry, NamesSortedAndSummarized) {
  const SolverRegistry& reg = SolverRegistry::global();
  const std::vector<std::string> names = reg.names();
  ASSERT_FALSE(names.empty());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(LowerBoundAuto, MatchesStructureSpecificBounds) {
  const core::Instance ind = independent_instance(6, 3);
  EXPECT_DOUBLE_EQ(lower_bound_auto(ind).value,
                   algos::lower_bound_independent(ind).value);

  const core::Instance ch = chain_instance();
  EXPECT_DOUBLE_EQ(lower_bound_auto(ch).value,
                   algos::lower_bound_chains(ch, ch.dag().chains()).value);

  // Forests get the Lemma 5 LP2 term as well, so the bound is at least the
  // Lemma 1 value.
  const core::Instance f = forest_instance();
  EXPECT_GE(lower_bound_auto(f).value,
            algos::lower_bound_independent(f).value - 1e-9);
}

}  // namespace
}  // namespace suu::api
