#include "algos/suu_t.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "sim/engine.hpp"

namespace suu::algos {
namespace {

sim::EstimateOptions strict_opts(int reps, std::uint64_t seed) {
  sim::EstimateOptions o;
  o.replications = reps;
  o.seed = seed;
  o.strict_eligibility = true;
  return o;
}

TEST(SuuT, CompletesOutStar) {
  core::Dag d(4);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(0, 3);
  core::Instance inst(4, 2, std::vector<double>(8, 0.5), std::move(d));
  const util::Estimate e = sim::estimate_makespan(
      inst, [] { return std::make_unique<SuuTPolicy>(); },
      strict_opts(60, 1));
  EXPECT_GE(e.mean, 2.0);  // root then leaves
}

TEST(SuuT, CompletesInStar) {
  core::Dag d(4);
  d.add_edge(1, 0);
  d.add_edge(2, 0);
  d.add_edge(3, 0);
  core::Instance inst(4, 2, std::vector<double>(8, 0.5), std::move(d));
  const util::Estimate e = sim::estimate_makespan(
      inst, [] { return std::make_unique<SuuTPolicy>(); },
      strict_opts(60, 2));
  EXPECT_GE(e.mean, 2.0);
}

class SuuTFamilies : public ::testing::TestWithParam<std::tuple<int, bool>> {
};

TEST_P(SuuTFamilies, CompletesRandomForestsStrictly) {
  const auto [seed, out] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 37 + 5);
  core::Instance inst =
      out ? core::make_out_forest(18, 3, 0.15, 3,
                                  core::MachineModel::uniform(0.3, 0.9), rng)
          : core::make_in_forest(18, 3, 0.15, 3,
                                 core::MachineModel::uniform(0.3, 0.9), rng);
  const util::Estimate e = sim::estimate_makespan(
      inst, [] { return std::make_unique<SuuTPolicy>(); },
      strict_opts(20, 500 + static_cast<std::uint64_t>(seed)));
  EXPECT_GE(e.mean, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SuuTFamilies,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Bool()));

TEST(SuuT, BlockCountMatchesDecomposition) {
  util::Rng rng(11);
  core::Instance inst = core::make_out_forest(
      30, 2, 0.1, 3, core::MachineModel::uniform(0.4, 0.9), rng);
  SuuTPolicy policy;
  sim::ExecConfig cfg;
  cfg.seed = 3;
  cfg.strict_eligibility = true;
  const sim::ExecResult r = sim::execute(inst, policy, cfg);
  EXPECT_FALSE(r.capped);
  const auto dec = chains::decompose_forest(inst.dag());
  EXPECT_EQ(policy.num_blocks(), dec.num_blocks());
  EXPECT_EQ(policy.current_block(), dec.num_blocks() - 1);
}

TEST(SuuT, HandlesPlainChainsToo) {
  util::Rng rng(13);
  core::Instance inst = core::make_chains(
      3, 2, 3, 2, core::MachineModel::uniform(0.4, 0.9), rng);
  const util::Estimate e = sim::estimate_makespan(
      inst, [] { return std::make_unique<SuuTPolicy>(); },
      strict_opts(30, 7));
  EXPECT_GE(e.mean, 1.0);
}

}  // namespace
}  // namespace suu::algos
