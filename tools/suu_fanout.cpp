// suu_fanout — spawn a pool of local suu_serve daemons, fan one estimate
// out over them with the ShardCoordinator, and verify the merged bytes.
//
// The point of the tool is the verification, not the speedup: it computes
// the reference output IN PROCESS (the same library the daemons run) and
// byte-compares the coordinator's merged table against the streamed shard
// rows and its merged aggregate against the plain single-server estimate
// result. Any drift — formatting, seeding, merge order — is a non-zero
// exit, which is what the CI smoke job keys on.
//
//   suu_fanout --serve-bin=./suu_serve --backends=3 --shards=8 --reps=200
//   suu_fanout --serve-bin=./suu_serve --backends=3 --kill-one
//
// --kill-one arms backend 0 with a deterministic mid-stream crash fault
// (service/fault.hpp, exit_after_lines): it serves a couple of replies
// and then _exits with its shards in flight. The run must still produce
// byte-identical output via failover. --fault=SPEC arms backend 0 with an
// arbitrary fault spec instead.
//
// Exit codes: 0 bytes match, 1 mismatch or fan-out failure, 2 bad usage /
// failed to spawn daemons.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "client/coordinator.hpp"
#include "client/spawn.hpp"
#include "core/generators.hpp"
#include "core/io.hpp"
#include "service/engine.hpp"
#include "service/transport.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace suu;

/// All reply lines a local engine produces for one request line.
std::vector<std::string> local_call(service::Engine& engine,
                                    const std::string& request) {
  std::istringstream in(request + "\n");
  std::ostringstream out;
  service::serve_stream(engine, in, out);
  std::vector<std::string> lines;
  std::istringstream split(out.str());
  std::string line;
  while (std::getline(split, line)) lines.push_back(line);
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::string serve_bin = args.get_string("serve-bin", "./suu_serve");
  const int backends = static_cast<int>(args.get_int("backends", 3));
  const int shards = static_cast<int>(args.get_int("shards", 8));
  const int reps = static_cast<int>(args.get_int("reps", 120));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 5));
  const bool kill_one = args.has("kill-one");
  std::string fault = args.get_string("fault", "");
  if (backends < 1 || shards < 1 || reps < shards) {
    std::cerr << "suu_fanout: need backends >= 1, 1 <= shards <= reps\n";
    return 2;
  }
  if (kill_one && fault.empty()) {
    // Deterministic mid-stream death: backend 0 serves two reply lines
    // (its open_instance plus one shard) and then crashes with work
    // still queued on it.
    fault = "exit_after_lines=2";
  }

  // Deterministic demo instance; the same bytes go to every backend and
  // to the in-process reference.
  util::Rng rng(42);
  const core::Instance instance = core::make_independent(
      static_cast<int>(args.get_int("n", 12)),
      static_cast<int>(args.get_int("m", 4)),
      core::MachineModel::uniform(0.3, 0.95), rng);
  std::ostringstream inst_os;
  core::write_instance(inst_os, instance);

  client::EstimateJob job;
  job.instance_text = inst_os.str();
  job.solver = "auto";
  job.seed = seed;
  job.replications = reps;
  job.lower_bound = true;

  // ---- reference bytes, computed in process (no daemons involved)
  service::Engine ref_engine;
  std::string quoted_instance;
  service::json_append_quoted(quoted_instance, job.instance_text);
  const std::string base_params =
      "\"instance\":" + quoted_instance +
      ",\"solver\":\"auto\",\"seed\":" + std::to_string(seed) +
      ",\"replications\":" + std::to_string(reps) + ",\"lower_bound\":true";
  const auto plain = local_call(
      ref_engine,
      R"({"id":1,"method":"estimate","params":{)" + base_params + "}}");
  const auto streamed = local_call(
      ref_engine, R"({"id":2,"method":"estimate","params":{)" + base_params +
                      ",\"stream\":true,\"shards\":" +
                      std::to_string(shards) + "}}");
  if (plain.size() != 1 ||
      streamed.size() != static_cast<std::size_t>(shards) + 1) {
    std::cerr << "suu_fanout: reference computation failed\n";
    return 2;
  }
  const std::string ref_result = client::extract_object(plain[0], "result");
  std::string ref_table;
  for (int s = 0; s < shards; ++s) {
    ref_table += client::extract_object(streamed[static_cast<std::size_t>(s)],
                                        "shard");
    ref_table.push_back('\n');
  }

  // ---- spawn the pool
  std::vector<client::LocalDaemon> daemons;
  std::vector<client::Backend> pool;
  for (int b = 0; b < backends; ++b) {
    daemons.emplace_back(serve_bin, b == 0 ? fault : "");
    if (!daemons.back().ok()) {
      std::cerr << "suu_fanout: failed to spawn " << serve_bin << "\n";
      return 2;
    }
    pool.push_back(client::Backend{daemons.back().port()});
    std::cout << "backend " << b << ": pid " << daemons.back().pid()
              << " port " << daemons.back().port()
              << (b == 0 && !fault.empty() ? "  [fault: " + fault + "]" : "")
              << "\n";
  }

  client::FanoutOptions opt;
  opt.shards = shards;
  opt.request_timeout_ms = 60000;
  opt.backoff.base_ms = 5;
  opt.backoff.max_ms = 50;
  client::ShardCoordinator coordinator(pool, opt);
  const client::FanoutResult res = coordinator.run(job);
  daemons.clear();

  if (!res.ok) {
    std::cerr << "suu_fanout: fan-out failed: " << res.error << "\n";
    return 1;
  }
  const bool table_ok = res.table_json == ref_table;
  const bool result_ok = res.result_json == ref_result;
  std::cout << "shards " << shards << " over " << backends
            << " backends: attempts " << res.attempts << ", retries "
            << res.retries << ", failovers " << res.failovers
            << ", reopens " << res.reopens << ", probes " << res.probes
            << "\n";
  if (res.recovery_ms >= 0) {
    std::cout << "recovery " << res.recovery_ms << " ms\n";
  }
  for (std::size_t b = 0; b < res.backends.size(); ++b) {
    const client::BackendReport& rep = res.backends[b];
    std::cout << "backend " << b << ": served " << rep.shards_served
              << (rep.ejected ? ", ejected" : "")
              << (rep.readmitted ? ", readmitted" : "")
              << (rep.alive ? "" : ", dead") << "\n";
  }
  std::cout << "table bytes: " << (table_ok ? "MATCH" : "MISMATCH")
            << "\nresult bytes: " << (result_ok ? "MATCH" : "MISMATCH")
            << "\n";
  if (!table_ok || !result_ok) {
    std::cerr << "expected result: " << ref_result
              << "\n     got result: " << res.result_json << "\n";
    return 1;
  }
  return 0;
}
