#!/bin/sh
# Check intra-repo markdown links in README.md, ROADMAP.md, and docs/*.md:
# every relative link target (after stripping a #fragment) must exist on
# disk, resolved against the linking file's directory. External links
# (http/https/mailto) and pure-fragment links are skipped. Exits non-zero
# listing every dangling reference; CI's docs job runs this on every push,
# and it is runnable locally from the repo root:
#
#   sh tools/check_doc_links.sh
set -u
cd "$(dirname "$0")/.." || exit 2

fail=0
checked=0
for f in README.md ROADMAP.md docs/*.md; do
  [ -f "$f" ] || continue
  dir=$(dirname "$f")
  # Markdown link targets: every "](target)" occurrence outside fenced
  # code blocks (a C++ lambda "[](...)" in a snippet is not a link). Repo
  # links never contain spaces or nested parens, so requiring a space-free
  # target and splitting on whitespace is safe here.
  for link in $(awk '/^```/ { in_code = !in_code; next } !in_code' "$f" |
                grep -o ']([^) ]*)' | sed 's/^](//;s/)$//'); do
    case "$link" in
      http://* | https://* | mailto:* | "#"*) continue ;;
    esac
    target=${link%%#*}
    [ -n "$target" ] || continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$target" ]; then
      echo "dangling link in $f: $link"
      fail=1
    fi
  done
done

if [ "$fail" -ne 0 ]; then
  echo "check_doc_links: FAILED"
  exit 1
fi
echo "check_doc_links: OK ($checked intra-repo links resolve)"
