// suu_serve — the solver service daemon.
//
// Exposes the full solver registry over the line-delimited JSON protocol
// (see docs/wire-protocol.md). Two transports:
//
//   stdio (default)  one client on stdin/stdout; a shutdown request stops
//                    admission, and the process exits once stdin closes
//                    (the blocking read cannot be interrupted mid-line):
//                      echo '{"id":1,"method":"list_solvers"}' | suu_serve
//   tcp              loopback listener, one connection per client:
//                      suu_serve --mode=tcp --port=7071
//                    --port=0 (default) picks an ephemeral port; the bound
//                    port is announced on stdout as "listening <port>" so
//                    scripts can scrape it.
//
// Tuning: --workers=N (request concurrency, 0 = hardware), --queue=K
// (bounded admission; excess requests get an "overloaded" error),
// --cache-capacity=C (prepared-solver LRU entries), --max-reps=R (per
// request replication cap), --max-handles=H (open instance handles per
// engine; opening one more expires the least-recently-used session),
// --idle-timeout-ms=T (tcp only: abandon a connection whose peer stays
// silent for T ms; 0 = wait forever), --max-outbound-bytes=B (tcp only:
// disconnect a slow reader once B reply bytes are queued unwritten on its
// connection; the epoll loop's backpressure bound).
//
// Observability (docs/observability.md): --metrics-port=P serves the
// Prometheus text exposition on loopback (0 picks an ephemeral port,
// announced as "metrics <port>" on stdout); --slow-log-ms=N dumps a span
// trace to stderr for any request at least that slow; --no-obs disables
// all metric/span recording at runtime; --version prints the build
// identity (also exported as the suu_build_info metric) and exits.
//
// Fault injection (tests/demos only): --fault=SPEC or the SUU_FAULT
// environment variable (flag wins) installs deterministic reply-path
// faults on every tcp connection — see service/fault.hpp for the
// `key=value,...` grammar. A malformed spec is a startup error (exit 2),
// never a silently inactive fault.
//
// Sessions and streams (docs/wire-protocol.md): open_instance parses an
// instance once and returns a handle; solve/estimate take {"handle": h}
// instead of inline instance bytes; estimate {"stream": true, "shards": K}
// answers with one seq-ordered envelope per shard plus a terminal "done"
// line.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include <memory>

#include "api/precompute_cache.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "service/engine.hpp"
#include "service/fault.hpp"
#include "service/transport.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace suu;
  const util::Args args(argc, argv);
  if (args.has("version")) {
    std::cout << "suu_serve " << obs::kVersion << " ("
              << obs::build_type() << ", obs=" << obs::obs_mode() << ")\n";
    return 0;
  }
  const std::string mode = args.get_string("mode", "stdio");
  if (mode != "stdio" && mode != "tcp") {
    std::cerr << "suu_serve: --mode must be stdio or tcp\n";
    return 2;
  }

  // A client that disappears mid-reply must surface as a write error, not
  // a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  service::Engine::Config cfg;
  cfg.workers = static_cast<unsigned>(args.get_int("workers", 0));
  cfg.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue", 256));
  cfg.max_replications =
      static_cast<int>(args.get_int("max-reps", cfg.max_replications));
  cfg.max_open_handles = static_cast<std::size_t>(args.get_int(
      "max-handles", static_cast<std::int64_t>(cfg.max_open_handles)));
  cfg.idle_timeout_ms =
      static_cast<int>(args.get_int("idle-timeout-ms", 0));
  cfg.max_outbound_bytes = static_cast<std::size_t>(args.get_int(
      "max-outbound-bytes",
      static_cast<std::int64_t>(cfg.max_outbound_bytes)));
  cfg.slow_log_ms = static_cast<int>(args.get_int("slow-log-ms", 0));
  if (args.has("no-obs")) obs::set_enabled(false);
  api::PrecomputeCache::global().set_capacity(
      static_cast<std::size_t>(args.get_int("cache-capacity", 256)));

  service::FaultSpec fault;
  {
    std::string spec = args.get_string("fault", "");
    if (spec.empty()) {
      if (const char* env = std::getenv("SUU_FAULT")) spec = env;
    }
    std::string err;
    if (!service::FaultSpec::parse(spec, &fault, &err)) {
      std::cerr << "suu_serve: bad fault spec: " << err << "\n";
      return 2;
    }
  }

  service::Engine engine(cfg);
  // --metrics-port with no value (or 0) picks an ephemeral port; the bound
  // port is announced like the tcp listener's so scripts can scrape it.
  std::unique_ptr<service::MetricsServer> metrics;
  if (args.has("metrics-port")) {
    metrics = std::make_unique<service::MetricsServer>(
        engine, static_cast<std::uint16_t>(args.get_int("metrics-port", 0)));
    std::cout << "metrics " << metrics->port() << std::endl;
  }
  if (mode == "stdio") {
    service::serve_stream(engine, std::cin, std::cout);
    return 0;
  }
  service::TcpServer server(engine,
                            static_cast<std::uint16_t>(
                                args.get_int("port", 0)),
                            fault);
  std::cout << "listening " << server.port() << std::endl;
  server.run();
  engine.drain();
  return 0;
}
