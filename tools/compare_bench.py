#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on perf regressions.

Usage:
    compare_bench.py BASELINE CURRENT --bench NAME [--bench NAME ...]
                     [--max-ratio 1.25] [--counter pivots --counter-ratio 1.05]

For every --bench NAME (exact benchmark name, e.g. "BM_SimplexLp1/1024"),
the current run's real_time must be at most --max-ratio times the baseline's
real_time. When --counter is given, the same check runs on that exported
counter with its own ratio — counters such as "pivots" are deterministic per
build, so a much tighter bound is appropriate there than on wall time.

Exit code 0 when every checked benchmark holds, 1 on any regression or any
requested benchmark missing from either file. The full comparison table is
printed either way, so CI logs show the trajectory even on green runs.

Counter-only entries (benches that export counters or percentile columns
but no real_time — both files agree) skip the missing metric instead of
failing: a metric absent from BOTH files is not a regression signal. A
metric present in one file but not the other still fails, since that means
the two runs measured different things.

    compare_bench.py BASELINE --list

prints the baseline's entry names (one per line) and exits — handy for
discovering exact --bench spellings.

This is the perf-smoke gate wired into .github/workflows/ci.yml: the
checked-in BENCH_perf_micro.json at the repo root is the baseline, the
Release job's fresh run is the candidate.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """name -> benchmark entry, aggregates (mean/median/stddev) excluded."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    out = {}
    for i, b in enumerate(doc.get("benchmarks", [])):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        if name is None:
            sys.exit(
                f"error: {path}: benchmarks[{i}] has no 'name' field — "
                "not google-benchmark output?"
            )
        out[name] = b
    if not out:
        sys.exit(f"error: no benchmarks in {path}")
    return out


def main():
    ap = argparse.ArgumentParser(
        description="Fail when benchmarks regress vs a baseline JSON."
    )
    ap.add_argument("baseline", help="baseline BENCH_*.json")
    ap.add_argument("current", nargs="?", help="candidate BENCH_*.json")
    ap.add_argument(
        "--bench",
        action="append",
        metavar="NAME",
        help="exact benchmark name to check (repeatable)",
    )
    ap.add_argument(
        "--list",
        action="store_true",
        help="print the baseline's benchmark entry names and exit",
    )
    ap.add_argument(
        "--max-ratio",
        type=float,
        default=1.25,
        help="max allowed current/baseline real_time ratio (default 1.25)",
    )
    ap.add_argument(
        "--counter",
        metavar="COUNTER",
        help="also check this exported counter (e.g. pivots)",
    )
    ap.add_argument(
        "--counter-ratio",
        type=float,
        default=1.05,
        help="max allowed current/baseline ratio for --counter (default 1.05)",
    )
    args = ap.parse_args()

    base = load_benchmarks(args.baseline)
    if args.list:
        for name in base:
            print(name)
        return 0
    if args.current is None or not args.bench:
        ap.error("CURRENT and at least one --bench are required "
                 "(or use --list)")
    curr = load_benchmarks(args.current)

    failed = False
    rows = []
    for name in args.bench:
        checks = [("real_time", args.max_ratio)]
        if args.counter:
            checks.append((args.counter, args.counter_ratio))
        for metric, max_ratio in checks:
            b = base.get(name)
            c = curr.get(name)
            if b is None or c is None:
                rows.append((name, metric, "-", "-", "-", "MISSING"))
                failed = True
                continue
            bv = b.get(metric)
            cv = c.get(metric)
            if bv is None and cv is None:
                # Counter-only entry (e.g. a percentile/histogram bench with
                # no real_time) in both files: nothing to compare, not a
                # regression.
                rows.append((name, metric, "-", "-", "-", "skipped"))
                continue
            if bv is None or cv is None:
                rows.append((name, metric, "-", "-", "-", "NO-METRIC"))
                failed = True
                continue
            if bv <= 0:
                # A zero baseline (e.g. a counter that was 0) cannot form a
                # ratio; only flag if the candidate became nonzero.
                ok = cv <= 0
                ratio_s = "inf" if not ok else "-"
            else:
                ratio = cv / bv
                ok = ratio <= max_ratio
                ratio_s = f"{ratio:.3f}"
            rows.append(
                (name, metric, f"{bv:.4g}", f"{cv:.4g}", ratio_s,
                 "ok" if ok else f"REGRESSED (> {max_ratio:g}x)")
            )
            failed = failed or not ok

    widths = [max(len(str(r[i])) for r in rows + [
        ("benchmark", "metric", "baseline", "current", "ratio", "verdict")
    ]) for i in range(6)]
    header = ("benchmark", "metric", "baseline", "current", "ratio", "verdict")
    for r in [header] + rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(r, widths)).rstrip())

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
