// suu_metrics — scrape, pretty-print, and diff the suu_serve metrics
// endpoint (docs/observability.md).
//
//   suu_metrics --port=P                 scrape 127.0.0.1:P and pretty-print:
//                                        counters/gauges as name=value,
//                                        histograms as count/sum plus
//                                        p50/p90/p99 derived from the
//                                        log-bucket counts
//   suu_metrics --port=P --raw           dump the raw Prometheus text body
//   suu_metrics --port=P --out=FILE      also save the raw body to FILE
//   suu_metrics --port=P --diff=FILE     print metrics whose values changed
//                                        vs a previously saved scrape
//                                        (counter/gauge deltas, histogram
//                                        count deltas)
//   suu_metrics --file=FILE ...          read a saved scrape instead of
//                                        connecting
//   suu_metrics ... --grep=PREFIX        restrict output to metric names
//                                        containing PREFIX
//
// Exit codes: 0 ok, 1 empty scrape (no metrics matched), 2 usage/connect
// errors.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.hpp"

namespace {

std::string scrape(std::uint16_t port, std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *err = "socket() failed";
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    *err = "connect to 127.0.0.1:" + std::to_string(port) + " refused";
    ::close(fd);
    return {};
  }
  // The endpoint answers without waiting for a request; send a minimal one
  // anyway so the exchange also works against a strict HTTP server.
  const std::string req = "GET /metrics HTTP/1.0\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  ::shutdown(fd, SHUT_WR);
  std::string raw;
  char buf[4096];
  ssize_t r;
  while ((r = ::read(fd, buf, sizeof buf)) > 0) {
    raw.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  // Strip the HTTP header block when present.
  const std::size_t hdr_end = raw.find("\r\n\r\n");
  if (hdr_end != std::string::npos) return raw.substr(hdr_end + 4);
  return raw;
}

struct Series {
  // Scalar value for counters/gauges; histograms carry buckets instead.
  double value = 0.0;
  bool is_histogram = false;
  std::vector<std::pair<std::string, double>> buckets;  // le -> cumulative
  double sum = 0.0;
  double count = 0.0;
};

// name{labels} -> Series. Histogram series are keyed by their base name
// (labels minus le), with _bucket/_sum/_count folded in.
std::map<std::string, Series> parse_exposition(const std::string& text) {
  std::map<std::string, Series> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    const std::string name = line.substr(0, sp);
    const double value = std::strtod(line.c_str() + sp + 1, nullptr);

    // Histogram component? name is <base>_bucket{...le="X"...} or
    // <base>_sum / <base>_count (with optional labels).
    const std::size_t brace = name.find('{');
    const std::string bare =
        brace == std::string::npos ? name : name.substr(0, brace);
    std::string labels = brace == std::string::npos
                             ? std::string()
                             : name.substr(brace, name.size() - brace);
    auto ends_with = [](const std::string& s, const char* suf) {
      const std::size_t n = std::string(suf).size();
      return s.size() >= n && s.compare(s.size() - n, n, suf) == 0;
    };
    const std::size_t le_pos = labels.find("le=\"");
    if (ends_with(bare, "_bucket") && le_pos != std::string::npos) {
      const std::size_t le_end = labels.find('"', le_pos + 4);
      const std::string le = labels.substr(le_pos + 4, le_end - le_pos - 4);
      // Remove the le label (and a dangling comma/braces) to rebuild the
      // series key.
      std::size_t cut_begin = le_pos;
      std::size_t cut_end = le_end + 1;
      if (cut_begin > 1 && labels[cut_begin - 1] == ',') {
        --cut_begin;
      } else if (cut_end < labels.size() && labels[cut_end] == ',') {
        ++cut_end;
      }
      labels.erase(cut_begin, cut_end - cut_begin);
      if (labels == "{}") labels.clear();
      const std::string key =
          bare.substr(0, bare.size() - 7) + labels;  // drop "_bucket"
      Series& s = out[key];
      s.is_histogram = true;
      s.buckets.emplace_back(le, value);
      continue;
    }
    if (ends_with(bare, "_sum") || ends_with(bare, "_count")) {
      const bool is_sum = ends_with(bare, "_sum");
      const std::string key =
          bare.substr(0, bare.size() - (is_sum ? 4 : 6)) + labels;
      const auto it = out.find(key);
      if (it != out.end() && it->second.is_histogram) {
        (is_sum ? it->second.sum : it->second.count) = value;
        continue;
      }
    }
    out[name].value = value;
  }
  return out;
}

// Smallest bucket bound with cumulative count >= q * total, in
// microseconds (buckets carry integer-us bounds; "+Inf" falls back to the
// last finite bound).
double quantile_us(const Series& s, double q) {
  if (s.count <= 0) return 0.0;
  const double rank = q * s.count;
  double last_finite = 0.0;
  for (const auto& [le, cum] : s.buckets) {
    if (le == "+Inf") continue;
    last_finite = std::strtod(le.c_str(), nullptr);
    if (cum >= rank) return last_finite;
  }
  return last_finite;
}

std::string fmt_num(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace suu;
  const util::Args args(argc, argv);
  const std::string file = args.get_string("file", "");
  std::string body;
  if (!file.empty()) {
    std::ifstream is(file);
    if (!is) {
      std::cerr << "suu_metrics: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream os;
    os << is.rdbuf();
    body = os.str();
  } else if (args.has("port")) {
    std::string err;
    body = scrape(static_cast<std::uint16_t>(args.get_int("port", 0)), &err);
    if (body.empty()) {
      std::cerr << "suu_metrics: " << (err.empty() ? "empty scrape" : err)
                << "\n";
      return 2;
    }
  } else {
    std::cerr << "suu_metrics: need --port=P or --file=FILE\n";
    return 2;
  }

  const std::string out_file = args.get_string("out", "");
  if (!out_file.empty()) {
    std::ofstream os(out_file);
    os << body;
  }
  if (args.has("raw")) {
    std::cout << body;
    return body.empty() ? 1 : 0;
  }

  const std::string grep = args.get_string("grep", "");
  const std::map<std::string, Series> now = parse_exposition(body);

  const std::string diff_file = args.get_string("diff", "");
  if (!diff_file.empty()) {
    std::ifstream is(diff_file);
    if (!is) {
      std::cerr << "suu_metrics: cannot read " << diff_file << "\n";
      return 2;
    }
    std::ostringstream os;
    os << is.rdbuf();
    const std::map<std::string, Series> base = parse_exposition(os.str());
    int shown = 0;
    for (const auto& [name, s] : now) {
      if (!grep.empty() && name.find(grep) == std::string::npos) continue;
      const auto it = base.find(name);
      const double now_v = s.is_histogram ? s.count : s.value;
      const double base_v =
          it == base.end()
              ? 0.0
              : (it->second.is_histogram ? it->second.count : it->second.value);
      if (now_v == base_v) continue;
      std::cout << name << (s.is_histogram ? "_count" : "") << " "
                << fmt_num(base_v) << " -> " << fmt_num(now_v) << " (+"
                << fmt_num(now_v - base_v) << ")\n";
      ++shown;
    }
    return shown > 0 ? 0 : 1;
  }

  int shown = 0;
  for (const auto& [name, s] : now) {
    if (!grep.empty() && name.find(grep) == std::string::npos) continue;
    if (s.is_histogram) {
      std::cout << name << " count=" << fmt_num(s.count)
                << " sum_us=" << fmt_num(s.sum)
                << " p50_us=" << fmt_num(quantile_us(s, 0.50))
                << " p90_us=" << fmt_num(quantile_us(s, 0.90))
                << " p99_us=" << fmt_num(quantile_us(s, 0.99)) << "\n";
    } else {
      std::cout << name << " " << fmt_num(s.value) << "\n";
    }
    ++shown;
  }
  return shown > 0 ? 0 : 1;
}
