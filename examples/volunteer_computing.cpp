// Volunteer computing (the paper's SETI@home motivation, Section 1):
// a large batch of independent work units distributed over a pool of
// volunteer machines — a few reliable hosts and a long tail of flaky ones.
//
// Shows how SUU-I-SEM allocates redundancy: flaky machines are ganged onto
// stragglers while reliable machines sweep the bulk, and how the makespan
// compares to "send every unit to its most reliable host".
//
//   ./volunteer_computing [--units=48] [--hosts=16] [--reps=200]
#include <iostream>
#include <memory>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "core/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace suu;
  const util::Args args(argc, argv);
  const int units = static_cast<int>(args.get_int("units", 48));
  const int hosts = static_cast<int>(args.get_int("hosts", 16));
  const int reps = static_cast<int>(args.get_int("reps", 200));

  // A volunteer pool: 20% reliable hosts (fail 5-30% of steps), the rest
  // flaky (fail 70-98%).
  util::Rng rng(2026);
  auto inst = std::make_shared<const core::Instance>(core::make_independent(
      units, hosts, core::MachineModel::classes(), rng));

  std::cout << "Volunteer pool: " << units << " work units, " << hosts
            << " hosts (20% reliable / 80% flaky)\n\n";

  const algos::LowerBound lb = api::lower_bound_auto(*inst);

  api::ExperimentRunner::Options opt;
  opt.seed = 7;
  opt.replications = reps;
  api::ExperimentRunner runner(opt);

  struct Strategy {
    std::string display;
    std::string solver;
  };
  const std::vector<Strategy> strategies = {
      {"suu-i-sem (adaptive redundancy)", "suu-i-sem"},
      {"suu-i-obl (fixed redundancy)", "suu-i-obl"},
      {"greedy (Lin-Rajaraman flavor)", "greedy-lr"},
      {"best-host-only", "best-machine"},
  };
  for (const Strategy& s : strategies) {
    api::Cell cell;
    cell.instance_label = "volunteer pool";
    cell.instance = inst;
    cell.solver = s.solver;
    cell.lower_bound = lb.value;
    runner.add(std::move(cell));
  }
  const auto& res = runner.run();

  util::Table table({"strategy", "E[steps]", "vs LB", "p95"});
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    table.add_row({strategies[i].display,
                   util::fmt(res[i].makespan.mean, 1),
                   util::fmt(res[i].ratio, 2),
                   util::fmt(res[i].samples.quantile(0.95), 0)});
  }
  table.print(std::cout);
  if (args.has("json")) runner.print_json(std::cout);
  std::cout << "\nLower bound (Lemma 1): " << util::fmt(lb.value, 2)
            << " steps. Redundancy-aware schedules close most of the gap;\n"
               "pinning each unit to its best host leaves the flaky tail "
               "idle and pays for it in the p95.\n";
  return 0;
}
