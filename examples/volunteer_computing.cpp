// Volunteer computing (the paper's SETI@home motivation, Section 1):
// a large batch of independent work units distributed over a pool of
// volunteer machines — a few reliable hosts and a long tail of flaky ones.
//
// Shows how SUU-I-SEM allocates redundancy: flaky machines are ganged onto
// stragglers while reliable machines sweep the bulk, and how the makespan
// compares to "send every unit to its most reliable host".
//
//   ./volunteer_computing [--units=48] [--hosts=16] [--reps=200]
#include <iostream>
#include <memory>

#include "algos/baselines.hpp"
#include "algos/lower_bounds.hpp"
#include "algos/suu_i.hpp"
#include "core/generators.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace suu;
  const util::Args args(argc, argv);
  const int units = static_cast<int>(args.get_int("units", 48));
  const int hosts = static_cast<int>(args.get_int("hosts", 16));
  const int reps = static_cast<int>(args.get_int("reps", 200));

  // A volunteer pool: 20% reliable hosts (fail 5-30% of steps), the rest
  // flaky (fail 70-98%).
  util::Rng rng(2026);
  core::Instance inst =
      core::make_independent(units, hosts, core::MachineModel::classes(),
                             rng);

  std::cout << "Volunteer pool: " << units << " work units, " << hosts
            << " hosts (20% reliable / 80% flaky)\n\n";

  const algos::LowerBound lb = algos::lower_bound_independent(inst);

  sim::EstimateOptions opt;
  opt.replications = reps;
  opt.seed = 7;

  util::Table table({"strategy", "E[steps]", "vs LB", "p95"});
  auto row = [&](const std::string& name, const sim::PolicyFactory& f) {
    const util::Sampler s = sim::sample_makespan(inst, f, opt);
    table.add_row({name, util::fmt(s.mean(), 1),
                   util::fmt(s.mean() / lb.value, 2),
                   util::fmt(s.quantile(0.95), 0)});
  };

  auto round1 = algos::SuuISemPolicy::precompute_round1(inst);
  row("suu-i-sem (adaptive redundancy)", [round1] {
    algos::SuuISemPolicy::Config cfg;
    cfg.round1 = round1;
    return std::make_unique<algos::SuuISemPolicy>(std::move(cfg));
  });
  auto pre = algos::SuuIOblPolicy::precompute(inst);
  row("suu-i-obl (fixed redundancy)",
      [pre] { return std::make_unique<algos::SuuIOblPolicy>(pre); });
  row("greedy (Lin-Rajaraman flavor)",
      [] { return std::make_unique<algos::GreedyLrPolicy>(); });
  row("best-host-only",
      [] { return std::make_unique<algos::BestMachinePolicy>(); });

  table.print(std::cout);
  std::cout << "\nLower bound (Lemma 1): " << util::fmt(lb.value, 2)
            << " steps. Redundancy-aware schedules close most of the gap;\n"
               "pinning each unit to its best host leaves the flaky tail "
               "idle and pays for it in the p95.\n";
  return 0;
}
