// Stochastic scheduling on an unrelated cluster (paper Appendix C):
// exponential job lengths with known rates, per-(machine, job) speeds, and
// the STC-I algorithm: Lawler-Labetoulle preemptive schedules with doubling
// deterministic targets.
//
//   ./stochastic_cluster [--jobs=12] [--machines=4] [--reps=400]
#include <iostream>

#include "stoch/instance.hpp"
#include "stoch/stc_i.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace suu;
  const util::Args args(argc, argv);
  const int n = static_cast<int>(args.get_int("jobs", 12));
  const int m = static_cast<int>(args.get_int("machines", 4));
  const int reps = static_cast<int>(args.get_int("reps", 400));

  // Cluster: machine speeds vary per job (data locality); job rates vary.
  util::Rng rng(47);
  std::vector<double> lambda, speed;
  for (int j = 0; j < n; ++j) lambda.push_back(0.4 + rng.uniform01() * 1.6);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      speed.push_back(rng.bernoulli(0.85) ? 0.25 + rng.uniform01() : 0.0);
    }
    bool any = false;
    for (int i = 0; i < m; ++i) {
      if (speed[static_cast<std::size_t>(j) * m + i] > 0) any = true;
    }
    if (!any) speed[static_cast<std::size_t>(j) * m] = 1.0;
  }
  const stoch::StochInstance inst(n, m, std::move(lambda), std::move(speed));

  std::cout << "Stochastic cluster: " << n << " exponential jobs on " << m
            << " unrelated machines\n"
            << "STC-I: " << stoch::stc_round_bound(n)
            << " doubling rounds of R|pmtn|Cmax (Lawler-Labetoulle)\n\n";

  const stoch::StochEstimate est = stoch::estimate_stoch(
      inst, reps, static_cast<std::uint64_t>(args.get_int("seed", 9)));

  util::Table table({"quantity", "value"});
  table.add_row({"E[T] STC-I",
                 util::fmt_pm(est.stc_i.mean, est.stc_i.ci95_half, 3)});
  table.add_row({"E[T] sequential-fastest baseline",
                 util::fmt_pm(est.sequential.mean,
                              est.sequential.ci95_half, 3)});
  table.add_row({"E[offline OPT] (per-draw LL optimum)",
                 util::fmt(est.offline.mean, 3)});
  table.add_row({"STC-I / offline OPT",
                 util::fmt(est.stc_i.mean / est.offline.mean, 2)});
  table.add_row({"speedup vs sequential",
                 util::fmt(est.sequential.mean / est.stc_i.mean, 2)});
  table.add_row({"mean rounds used", util::fmt(est.mean_rounds, 2)});
  table.add_row({"runs needing sequential tail",
                 util::fmt(100.0 * est.tail_fraction, 1) + "%"});
  table.print(std::cout);
  return 0;
}
