// MapReduce-style two-phase computation (paper Section 1: "Google's
// MapReduce generates jobs whose dependencies form a complete bipartite
// graph, which is equivalent to two phases of independent jobs").
//
// We build the complete bipartite precedence DAG (every reduce depends on
// every map) and schedule it as two SUU-I-SEM phases, exactly as the paper
// suggests. The engine enforces that no reduce starts before all maps
// finish (strict eligibility).
//
// This example also shows how to EXTEND the solver registry: TwoPhasePolicy
// is registered under "two-phase-sem" and then measured through the same
// ExperimentRunner as every builtin (see docs/architecture.md,
// "Adding a policy").
//
//   ./mapreduce_pipeline [--maps=24] [--reduces=8] [--machines=6]
#include <iostream>
#include <memory>

#include "algos/suu_i.hpp"
#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "core/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace suu;

/// Two chained SUU-I-SEM phases: maps first, then reduces.
class TwoPhasePolicy : public sim::Policy {
 public:
  TwoPhasePolicy(std::vector<int> maps, std::vector<int> reduces)
      : maps_(std::move(maps)), reduces_(std::move(reduces)) {}

  std::string name() const override { return "two-phase-sem"; }

  void reset(const core::Instance& inst, util::Rng rng) override {
    inst_ = &inst;
    algos::SuuISemPolicy::Config c1, c2;
    c1.universe = maps_;
    c2.universe = reduces_;
    phase1_ = std::make_unique<algos::SuuISemPolicy>(std::move(c1));
    phase2_ = std::make_unique<algos::SuuISemPolicy>(std::move(c2));
    phase1_->reset(inst, rng.child(1));
    rng2_ = rng.child(2);
    phase2_ready_ = false;
  }

  sched::Assignment decide(const sim::ExecState& state) override {
    for (const int j : maps_) {
      if (!state.completed(j)) return phase1_->decide(state);
    }
    if (!phase2_ready_) {
      // Reset phase 2 lazily so its LP sees only still-remaining reduces.
      phase2_->reset(*inst_, rng2_);
      phase2_ready_ = true;
    }
    return phase2_->decide(state);
  }

 private:
  std::vector<int> maps_, reduces_;
  const core::Instance* inst_ = nullptr;
  std::unique_ptr<algos::SuuISemPolicy> phase1_, phase2_;
  util::Rng rng2_{0};
  bool phase2_ready_ = false;
};

/// Register the custom policy: jobs without predecessors are the map
/// phase, everything else the reduce phase.
void register_two_phase() {
  api::SolverRegistry::global().add(
      "two-phase-sem",
      [](const core::Instance& inst, const api::SolverOptions&) {
        std::vector<int> maps, reduces;
        for (int j = 0; j < inst.num_jobs(); ++j) {
          (inst.dag().preds(j).empty() ? maps : reduces).push_back(j);
        }
        return [maps, reduces] {
          return std::make_unique<TwoPhasePolicy>(maps, reduces);
        };
      },
      "two chained SUU-I-SEM phases over a bipartite map/reduce dag");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int n_maps = static_cast<int>(args.get_int("maps", 24));
  const int n_reduces = static_cast<int>(args.get_int("reduces", 8));
  const int m = static_cast<int>(args.get_int("machines", 6));
  const int n = n_maps + n_reduces;

  // Complete bipartite precedence: reduce r depends on every map.
  core::Dag dag(n);
  for (int mp = 0; mp < n_maps; ++mp) {
    for (int r = 0; r < n_reduces; ++r) dag.add_edge(mp, n_maps + r);
  }
  util::Rng rng(11);
  auto inst = std::make_shared<const core::Instance>(
      n, m,
      core::gen_q(n, m, core::MachineModel::uniform(0.3, 0.9), rng),
      std::move(dag));

  std::cout << "MapReduce: " << n_maps << " maps -> " << n_reduces
            << " reduces on " << m << " machines (complete bipartite DAG, "
            << inst->dag().num_edges() << " edges)\n\n";

  register_two_phase();

  api::ExperimentRunner::Options opt;
  opt.seed = 5;
  opt.replications = static_cast<int>(args.get_int("reps", 150));
  opt.strict_eligibility = true;
  api::ExperimentRunner runner(opt);

  // Phase-wise lower bounds: each phase is an independent-jobs instance.
  const algos::LowerBound lb = api::lower_bound_auto(*inst);

  api::Cell cell;
  cell.instance_label = "mapreduce";
  cell.instance = inst;
  cell.solver = "two-phase-sem";
  cell.lower_bound = lb.value;
  runner.add(std::move(cell));
  const auto& res = runner.run();

  util::Table table({"quantity", "value"});
  table.add_row({"E[makespan] two-phase SEM",
                 util::fmt_pm(res[0].makespan.mean,
                              res[0].makespan.ci95_half, 2)});
  table.add_row({"lower bound (Lemma 1, whole dag)", util::fmt(lb.value, 2)});
  table.add_row({"ratio", util::fmt(res[0].ratio, 2)});
  table.print(std::cout);
  if (args.has("json")) runner.print_json(std::cout);
  std::cout << "\nThe barrier between phases is enforced by the engine: a "
               "reduce assigned early counts as idle.\n";
  return 0;
}
