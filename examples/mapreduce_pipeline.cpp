// MapReduce-style two-phase computation (paper Section 1: "Google's
// MapReduce generates jobs whose dependencies form a complete bipartite
// graph, which is equivalent to two phases of independent jobs").
//
// We build the complete bipartite precedence DAG (every reduce depends on
// every map) and schedule it as two SUU-I-SEM phases, exactly as the paper
// suggests. The engine enforces that no reduce starts before all maps
// finish (strict eligibility).
//
//   ./mapreduce_pipeline [--maps=24] [--reduces=8] [--machines=6]
#include <iostream>
#include <memory>

#include "algos/lower_bounds.hpp"
#include "algos/suu_i.hpp"
#include "core/generators.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace suu;

/// Two chained SUU-I-SEM phases: maps first, then reduces.
class TwoPhasePolicy : public sim::Policy {
 public:
  TwoPhasePolicy(std::vector<int> maps, std::vector<int> reduces)
      : maps_(std::move(maps)), reduces_(std::move(reduces)) {}

  std::string name() const override { return "two-phase-sem"; }

  void reset(const core::Instance& inst, util::Rng rng) override {
    inst_ = &inst;
    algos::SuuISemPolicy::Config c1, c2;
    c1.universe = maps_;
    c2.universe = reduces_;
    phase1_ = std::make_unique<algos::SuuISemPolicy>(std::move(c1));
    phase2_ = std::make_unique<algos::SuuISemPolicy>(std::move(c2));
    phase1_->reset(inst, rng.child(1));
    rng2_ = rng.child(2);
    phase2_ready_ = false;
  }

  sched::Assignment decide(const sim::ExecState& state) override {
    for (const int j : maps_) {
      if (!state.completed(j)) return phase1_->decide(state);
    }
    if (!phase2_ready_) {
      // Reset phase 2 lazily so its LP sees only still-remaining reduces.
      phase2_->reset(*inst_, rng2_);
      phase2_ready_ = true;
    }
    return phase2_->decide(state);
  }

 private:
  std::vector<int> maps_, reduces_;
  const core::Instance* inst_ = nullptr;
  std::unique_ptr<algos::SuuISemPolicy> phase1_, phase2_;
  util::Rng rng2_{0};
  bool phase2_ready_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int n_maps = static_cast<int>(args.get_int("maps", 24));
  const int n_reduces = static_cast<int>(args.get_int("reduces", 8));
  const int m = static_cast<int>(args.get_int("machines", 6));
  const int n = n_maps + n_reduces;

  // Complete bipartite precedence: reduce r depends on every map.
  core::Dag dag(n);
  for (int mp = 0; mp < n_maps; ++mp) {
    for (int r = 0; r < n_reduces; ++r) dag.add_edge(mp, n_maps + r);
  }
  util::Rng rng(11);
  core::Instance inst(n, m,
                      core::gen_q(n, m,
                                  core::MachineModel::uniform(0.3, 0.9),
                                  rng),
                      std::move(dag));

  std::vector<int> maps, reduces;
  for (int j = 0; j < n_maps; ++j) maps.push_back(j);
  for (int r = 0; r < n_reduces; ++r) reduces.push_back(n_maps + r);

  std::cout << "MapReduce: " << n_maps << " maps -> " << n_reduces
            << " reduces on " << m << " machines (complete bipartite DAG, "
            << inst.dag().num_edges() << " edges)\n\n";

  sim::EstimateOptions opt;
  opt.replications = static_cast<int>(args.get_int("reps", 150));
  opt.seed = 5;
  opt.strict_eligibility = true;

  const auto mv = maps;
  const auto rv = reduces;
  const util::Estimate e = sim::estimate_makespan(
      inst, [mv, rv] { return std::make_unique<TwoPhasePolicy>(mv, rv); },
      opt);

  // Phase-wise lower bounds: each phase is an independent-jobs instance.
  const algos::LowerBound lb = algos::lower_bound_independent(inst);

  util::Table table({"quantity", "value"});
  table.add_row({"E[makespan] two-phase SEM",
                 util::fmt_pm(e.mean, e.ci95_half, 2)});
  table.add_row({"lower bound (Lemma 1, whole dag)", util::fmt(lb.value, 2)});
  table.add_row({"ratio", util::fmt(e.mean / lb.value, 2)});
  table.print(std::cout);
  std::cout << "\nThe barrier between phases is enforced by the engine: a "
               "reduce assigned early counts as idle.\n";
  return 0;
}
