// Quickstart: build an SUU instance, schedule it with the paper's
// O(log log)-approximation via the solver registry (suu::api picks
// SUU-I-SEM for an independent-jobs instance), and compare the measured
// expected makespan against the LP lower bound and naive baselines.
//
//   ./quickstart [--n=12] [--m=4] [--reps=400] [--seed=1] [--json] [--gantt]
#include <iostream>
#include <memory>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "core/generators.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace suu;
  const util::Args args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 12));
  const int m = static_cast<int>(args.get_int("m", 4));
  const int reps = static_cast<int>(args.get_int("reps", 400));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // 1. An instance: n unit jobs, m unrelated machines, q_ij = probability
  //    that machine i FAILS to finish job j in one step.
  util::Rng rng(seed);
  auto inst = std::make_shared<const core::Instance>(core::make_independent(
      n, m, core::MachineModel::uniform(0.3, 0.95), rng));
  std::cout << "SUU instance: " << n << " independent jobs on " << m
            << " machines\n\n";

  // 2. The Lemma 1 lower bound on E[T_OPT].
  const algos::LowerBound lb = api::lower_bound_auto(*inst);
  std::cout << "Lower bound on E[T_OPT] (Lemma 1): " << util::fmt(lb.value)
            << " steps\n\n";

  // 3. Monte-Carlo estimates of the expected makespan, through the
  //    registry: "auto" resolves to suu-i-sem on an empty dag.
  api::ExperimentRunner::Options opt;
  opt.seed = seed + 1;
  opt.replications = reps;
  api::ExperimentRunner runner(opt);
  for (const std::string& solver :
       {std::string("auto"), std::string("round-robin"),
        std::string("all-on-one")}) {
    api::Cell cell;
    cell.instance_label = "quickstart";
    cell.instance = inst;
    cell.solver = solver;
    cell.lower_bound = lb.value;
    runner.add(std::move(cell));
  }
  runner.run();
  runner.table().print(std::cout);
  if (args.has("json")) runner.print_json(std::cout);

  if (args.has("gantt")) {
    // One sample execution of the auto-dispatched policy, as a Gantt chart.
    const api::PreparedSolver solver = api::solve_auto(*inst);
    std::cout << "\nSample execution (" << solver.name << "):\n";
    auto policy = solver.factory();
    sim::Trace trace;
    sim::ExecConfig cfg;
    cfg.seed = seed + 2;
    cfg.trace = &trace;
    sim::execute(*inst, *policy, cfg);
    sim::render_gantt(std::cout, *inst, trace);
  }

  std::cout << "\nDone. Try --n=64 --m=8 to see the gap widen, or --gantt "
               "for a sample execution chart.\n";
  return 0;
}
