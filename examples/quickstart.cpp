// Quickstart: build an SUU instance, schedule it with the paper's
// O(log log)-approximation (SUU-I-SEM), and compare the measured expected
// makespan against the LP lower bound and a naive baseline.
//
//   ./quickstart [--n=12] [--m=4] [--reps=400] [--seed=1]
#include <iostream>
#include <memory>

#include "algos/baselines.hpp"
#include "algos/lower_bounds.hpp"
#include "algos/suu_i.hpp"
#include "core/generators.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace suu;
  const util::Args args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 12));
  const int m = static_cast<int>(args.get_int("m", 4));
  const int reps = static_cast<int>(args.get_int("reps", 400));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // 1. An instance: n unit jobs, m unrelated machines, q_ij = probability
  //    that machine i FAILS to finish job j in one step.
  util::Rng rng(seed);
  core::Instance inst =
      core::make_independent(n, m, core::MachineModel::uniform(0.3, 0.95),
                             rng);
  std::cout << "SUU instance: " << n << " independent jobs on " << m
            << " machines\n\n";

  // 2. The Lemma 1 lower bound on E[T_OPT].
  const algos::LowerBound lb = algos::lower_bound_independent(inst);
  std::cout << "Lower bound on E[T_OPT] (Lemma 1): " << util::fmt(lb.value)
            << " steps\n\n";

  // 3. Monte-Carlo estimates of the expected makespan.
  sim::EstimateOptions opt;
  opt.replications = reps;
  opt.seed = seed + 1;

  util::Table table({"schedule", "E[makespan]", "ratio vs LB"});
  auto row = [&](const std::string& name, const sim::PolicyFactory& f) {
    const util::Estimate e = sim::estimate_makespan(inst, f, opt);
    table.add_row({name, util::fmt_pm(e.mean, e.ci95_half, 2),
                   util::fmt(e.mean / lb.value, 2)});
  };
  auto round1 = algos::SuuISemPolicy::precompute_round1(inst);
  row("suu-i-sem (this paper)", [round1] {
    algos::SuuISemPolicy::Config cfg;
    cfg.round1 = round1;
    return std::make_unique<algos::SuuISemPolicy>(std::move(cfg));
  });
  row("round-robin baseline",
      [] { return std::make_unique<algos::RoundRobinPolicy>(); });
  row("all-on-one (trivial O(n))",
      [] { return std::make_unique<algos::AllOnOnePolicy>(); });

  table.print(std::cout);

  if (args.has("gantt")) {
    // One sample execution of SUU-I-SEM, rendered as a Gantt chart.
    std::cout << "\nSample execution (suu-i-sem):\n";
    algos::SuuISemPolicy policy;
    sim::Trace trace;
    sim::ExecConfig cfg;
    cfg.seed = seed + 2;
    cfg.trace = &trace;
    sim::execute(inst, policy, cfg);
    sim::render_gantt(std::cout, inst, trace);
  }

  std::cout << "\nDone. Try --n=64 --m=8 to see the gap widen, or --gantt "
               "for a sample execution chart.\n";
  return 0;
}
