// Serve-client example: drive the suu::serve wire protocol end to end.
//
// Part 1 embeds service::Engine in-process (no sockets) and walks the
// protocol: list_solvers, a solve with lower bound, an estimate, stats.
// Part 2 walks the session layer: open_instance returns a handle, solve
// and a streamed sharded estimate reference it (no re-sent instance
// bytes), close_instance releases it — after which the handle is a typed
// error. Part 3 starts a loopback TcpServer on an ephemeral port, connects
// a raw TCP client, pipelines requests with out-of-order ids, and shuts
// the server down over the wire — the same bytes any non-C++ client would
// speak.
//
//   ./serve_client [--n=10] [--m=4] [--reps=200] [--skip-tcp]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "core/generators.hpp"
#include "core/io.hpp"
#include "service/engine.hpp"
#include "service/transport.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace suu;

namespace {

std::string instance_payload(int n, int m) {
  util::Rng rng(7);
  const core::Instance inst = core::make_independent(
      n, m, core::MachineModel::uniform(0.3, 0.95), rng);
  std::ostringstream os;
  core::write_instance(os, inst);
  return os.str();
}

/// JSON-escape an instance payload into a request params fragment.
std::string quoted(const std::string& s) {
  std::string out;
  service::json_append_quoted(out, s);
  return out;
}

void round_trip(service::Engine& engine, const std::string& request) {
  std::cout << "  -> " << request << "\n";
  std::cout << "  <- " << engine.handle(request) << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 10));
  const int m = static_cast<int>(args.get_int("m", 4));
  const int reps = static_cast<int>(args.get_int("reps", 200));
  const std::string inst = quoted(instance_payload(n, m));

  std::cout << "== in-process engine ==\n\n";
  service::Engine engine;
  round_trip(engine, R"({"id":1,"method":"list_solvers"})");
  round_trip(engine, R"({"id":2,"method":"solve","params":{"instance":)" +
                         inst + R"(,"lower_bound":true}})");
  round_trip(engine,
             R"({"id":3,"method":"estimate","params":{"instance":)" + inst +
                 R"(,"solver":"auto","replications":)" +
                 std::to_string(reps) + R"(,"seed":42}})");
  round_trip(engine, R"({"id":4,"method":"stats"})");
  // Malformed payloads get typed errors, never a crash:
  round_trip(engine, R"({"id":5,"method":"solve","params":{"instance":"suu-instance v1\n2 1\n0.5\n0.5\n2\n0 1\n1 0\n"}})");

  std::cout << "== sessions and streamed shards ==\n\n";
  // open_instance parses the payload once; this fresh-ish engine assigns
  // the next handle (6th request → still handle 1, handles are their own
  // counter). Subsequent requests reference it — no instance bytes.
  round_trip(engine, R"({"id":6,"method":"open_instance","params":{"instance":)" +
                         inst + "}}");
  round_trip(engine, R"({"id":7,"method":"solve","params":{"handle":1}})");
  // A streamed sharded estimate answers with one seq-ordered envelope per
  // shard plus a terminal done envelope carrying the aggregate (handle()
  // joins the lines; each arrives separately over a transport).
  round_trip(engine,
             R"({"id":8,"method":"estimate","params":{"handle":1,"replications":)" +
                 std::to_string(reps) +
                 R"(,"seed":42,"stream":true,"shards":3}})");
  round_trip(engine, R"({"id":9,"method":"close_instance","params":{"handle":1}})");
  // Closed (like unknown or expired) handles are a typed error:
  round_trip(engine, R"({"id":10,"method":"solve","params":{"handle":1}})");

  if (args.has("skip-tcp")) return 0;

  std::cout << "== loopback tcp ==\n\n";
  service::Engine tcp_engine;
  service::TcpServer server(tcp_engine, 0);
  std::thread server_thread([&] { server.run(); });
  std::cout << "server listening on 127.0.0.1:" << server.port() << "\n";

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::cerr << "connect failed\n";
    return 1;
  }
  // Pipeline three requests in one write; replies carry ids so order does
  // not matter.
  const std::string batch =
      R"({"id":"a","method":"solve","params":{"instance":)" + inst +
      "}}\n" +
      R"({"id":"b","method":"estimate","params":{"instance":)" + inst +
      R"(,"replications":50}})" + "\n" +
      R"({"id":"c","method":"shutdown"})" + "\n";
  (void)!::write(fd, batch.data(), batch.size());
  std::string received;
  char buf[4096];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r <= 0) break;
    received.append(buf, static_cast<std::size_t>(r));
    if (std::count(received.begin(), received.end(), '\n') >= 3) break;
  }
  std::cout << received;
  ::close(fd);
  server.stop();
  server_thread.join();
  std::cout << "server stopped after wire shutdown\n";
  return 0;
}
