// Scientific-workflow DAG (paper Appendix B): a random out-forest of tasks
// — think generated sub-analyses fanning out from seed tasks — scheduled
// with SUU-T: heavy-path decomposition into O(log n) blocks of disjoint
// chains, each run with SUU-C. The registry's "auto" dispatch recognizes
// the forest and routes to suu-t.
//
//   ./dag_workflow [--tasks=40] [--machines=4] [--reps=60]
#include <iostream>
#include <memory>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "chains/decomposition.hpp"
#include "core/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace suu;
  const util::Args args(argc, argv);
  const int n = static_cast<int>(args.get_int("tasks", 40));
  const int m = static_cast<int>(args.get_int("machines", 4));
  const int reps = static_cast<int>(args.get_int("reps", 60));

  util::Rng rng(31);
  auto inst = std::make_shared<const core::Instance>(core::make_out_forest(
      n, m, 0.12, 3, core::MachineModel::uniform(0.3, 0.9), rng));

  const chains::Decomposition dec = chains::decompose_forest(inst->dag());
  std::cout << "Workflow: " << n << " tasks, " << inst->dag().num_edges()
            << " dependencies, " << m << " machines\n";
  std::cout << "Heavy-path decomposition: " << dec.num_blocks()
            << " blocks (bound: floor(log2 n)+1), " << dec.num_chains()
            << " chains\n";
  for (int b = 0; b < dec.num_blocks(); ++b) {
    std::cout << "  block " << b << ": "
              << dec.blocks[static_cast<std::size_t>(b)].size()
              << " chains\n";
  }
  std::cout << "Registry dispatch: auto -> "
            << api::SolverRegistry::dispatch(*inst) << "\n\n";

  api::ExperimentRunner::Options opt;
  opt.seed = 3;
  opt.replications = reps;
  opt.strict_eligibility = true;
  api::ExperimentRunner runner(opt);
  const double lb = api::lower_bound_auto(*inst).value;
  for (const std::string& solver :
       {std::string("auto"), std::string("round-robin"),
        std::string("all-on-one")}) {
    api::Cell cell;
    cell.instance_label = "workflow";
    cell.instance = inst;
    cell.solver = solver;
    cell.lower_bound = lb;
    runner.add(std::move(cell));
  }
  runner.run();
  runner.table().print(std::cout);
  if (args.has("json")) runner.print_json(std::cout);
  return 0;
}
