// Scientific-workflow DAG (paper Appendix B): a random out-forest of tasks
// — think generated sub-analyses fanning out from seed tasks — scheduled
// with SUU-T: heavy-path decomposition into O(log n) blocks of disjoint
// chains, each run with SUU-C.
//
//   ./dag_workflow [--tasks=40] [--machines=4] [--reps=60]
#include <iostream>
#include <memory>

#include "algos/baselines.hpp"
#include "algos/lower_bounds.hpp"
#include "algos/suu_t.hpp"
#include "chains/decomposition.hpp"
#include "core/generators.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace suu;
  const util::Args args(argc, argv);
  const int n = static_cast<int>(args.get_int("tasks", 40));
  const int m = static_cast<int>(args.get_int("machines", 4));
  const int reps = static_cast<int>(args.get_int("reps", 60));

  util::Rng rng(31);
  core::Instance inst = core::make_out_forest(
      n, m, 0.12, 3, core::MachineModel::uniform(0.3, 0.9), rng);

  const chains::Decomposition dec = chains::decompose_forest(inst.dag());
  std::cout << "Workflow: " << n << " tasks, " << inst.dag().num_edges()
            << " dependencies, " << m << " machines\n";
  std::cout << "Heavy-path decomposition: " << dec.num_blocks()
            << " blocks (bound: floor(log2 n)+1), " << dec.num_chains()
            << " chains\n";
  for (int b = 0; b < dec.num_blocks(); ++b) {
    std::cout << "  block " << b << ": "
              << dec.blocks[static_cast<std::size_t>(b)].size()
              << " chains\n";
  }
  std::cout << "\n";

  sim::EstimateOptions opt;
  opt.replications = reps;
  opt.seed = 3;
  opt.strict_eligibility = true;

  const algos::LowerBound lb = algos::lower_bound_chains(
      inst, [&] {
        std::vector<std::vector<int>> all;
        for (const auto& block : dec.blocks) {
          all.insert(all.end(), block.begin(), block.end());
        }
        return all;
      }());

  util::Table table({"schedule", "E[makespan]", "vs LB"});
  auto row = [&](const std::string& name, const sim::PolicyFactory& f) {
    const util::Estimate e = sim::estimate_makespan(inst, f, opt);
    table.add_row({name, util::fmt_pm(e.mean, e.ci95_half, 1),
                   util::fmt(e.mean / lb.value, 2)});
  };
  row("suu-t (block-wise SUU-C)",
      [] { return std::make_unique<algos::SuuTPolicy>(); });
  row("round-robin over eligible",
      [] { return std::make_unique<algos::RoundRobinPolicy>(); });
  row("all-on-one (trivial O(n))",
      [] { return std::make_unique<algos::AllOnOnePolicy>(); });
  table.print(std::cout);
  return 0;
}
